"""Property-based tests on DES kernel invariants."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, SharedCPU, Store


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_callbacks_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda ev: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def proc(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for delay in delays:
            env.process(proc(env, delay))
        env.run()
        assert observed == sorted(observed)


class TestResourceInvariants:
    @given(
        capacity=st.integers(1, 5),
        holds=st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_concurrent_users_never_exceed_capacity(self, capacity, holds):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        peak = 0
        active = 0

        def user(env, hold):
            nonlocal peak, active
            with resource.request() as request:
                yield request
                active += 1
                peak = max(peak, active)
                yield env.timeout(hold)
                active -= 1

        for hold in holds:
            env.process(user(env, hold))
        env.run()
        assert peak <= capacity
        assert resource.count == 0  # all released

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_store_preserves_items(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in items:
                yield store.put(item)

        def consumer(env):
            for _ in range(len(items)):
                received.append((yield store.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == list(items)


class TestCpuWorkConservation:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),   # start offset
                st.floats(min_value=0.001, max_value=4.0),  # work
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_delivered_work_equals_submitted(self, specs):
        env = Environment()
        cpu = SharedCPU(env, cores=2)

        def submit(env, start, work):
            if start:
                yield env.timeout(start)
            task = cpu.execute(work)
            yield task.event

        for start, work in specs:
            env.process(submit(env, start, work))
        env.run()
        total = sum(work for _, work in specs)
        assert cpu.delivered_work == pytest.approx(total, rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=15),
        st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_completion_no_earlier_than_dedicated_run(self, works, cores):
        # Sharing can only slow a task down, never speed it beyond 1 core.
        env = Environment()
        cpu = SharedCPU(env, cores=cores)
        finish = {}

        def submit(env, idx, work):
            task = cpu.execute(work)
            yield task.event
            finish[idx] = env.now

        for idx, work in enumerate(works):
            env.process(submit(env, idx, work))
        env.run()
        for idx, work in enumerate(works):
            assert finish[idx] >= work - 1e-9
