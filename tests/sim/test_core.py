"""Unit tests for the DES kernel: environment, events, processes."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_clock_custom_start(self):
        env = Environment(initial_time=12.5)
        assert env.now == 12.5

    def test_run_empty_calendar_is_noop(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.timeout(100.0)
        env.run(until=40.0)
        assert env.now == 40.0

    def test_run_until_time_in_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_negative_delay_raises(self):
        env = Environment()
        with pytest.raises((SimulationError, ValueError)):
            env.timeout(-1.0)

    def test_step_on_empty_calendar_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []
        for delay in (5.0, 1.0, 3.0):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda ev: order.append(ev.value))
        env.run()
        assert order == [1.0, 3.0, 5.0]

    def test_simultaneous_events_fire_fifo(self):
        env = Environment()
        order = []
        for tag in range(5):
            t = env.timeout(1.0, value=tag)
            t.callbacks.append(lambda ev: order.append(ev.value))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestEvent:
    def test_succeed_sets_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed(17)
        assert ev.triggered and ev.ok and ev.value == 17

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_value_before_trigger_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_fail_requires_exception(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_crashes_run(self):
        env = Environment()
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_does_not_crash(self):
        env = Environment()
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defused = True
        env.run()  # no raise

    def test_run_until_event_returns_value(self):
        env = Environment()
        t = env.timeout(2.0, value="payload")
        assert env.run(until=t) == "payload"
        assert env.now == 2.0

    def test_run_until_already_triggered_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        assert env.run(until=ev) == "x"

    def test_run_until_event_never_triggering_raises(self):
        env = Environment()
        ev = env.event()  # never triggered
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=ev)


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3.0)
            return 42

        p = env.process(proc(env))
        env.run()
        assert p.value == 42
        assert env.now == 3.0

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        times = []

        def proc(env):
            for _ in range(3):
                yield env.timeout(2.0)
                times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.0, 4.0, 6.0]

    def test_process_waits_on_other_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(5.0)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            return result

        p = env.process(parent(env))
        env.run()
        assert p.value == "child-result"

    def test_yield_non_event_raises_inside_process(self):
        env = Environment()

        def proc(env):
            try:
                yield 123
            except TypeError:
                return "caught"

        p = env.process(proc(env))
        env.run()
        assert p.value == "caught"

    def test_exception_in_process_propagates(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise RuntimeError("inner")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="inner"):
            env.run()

    def test_exception_handled_by_waiting_parent(self):
        env = Environment()

        def child(env):
            yield env.timeout(1.0)
            raise ValueError("from-child")

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                return str(exc)

        p = env.process(parent(env))
        env.run()
        assert p.value == "from-child"

    def test_interrupt_wakes_process(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, victim):
            yield env.timeout(10.0)
            victim.interrupt(cause="reason")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == ("interrupted", "reason", 10.0)

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_process_is_alive_lifecycle(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        t1, t2 = env.timeout(1.0, "a"), env.timeout(5.0, "b")

        def proc(env):
            results = yield AllOf(env, [t1, t2])
            return (env.now, sorted(results.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (5.0, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()
        t1, t2 = env.timeout(1.0, "fast"), env.timeout(5.0, "slow")

        def proc(env):
            results = yield AnyOf(env, [t1, t2])
            return (env.now, list(results.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (1.0, ["fast"])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        cond = AllOf(env, [])
        assert cond.triggered

    def test_condition_failure_propagates(self):
        env = Environment()
        bad = env.event()

        def failer(env):
            yield env.timeout(1.0)
            bad.fail(ValueError("cond-fail"))

        def waiter(env):
            try:
                yield AllOf(env, [bad, env.timeout(10.0)])
            except ValueError as exc:
                return str(exc)

        env.process(failer(env))
        p = env.process(waiter(env))
        env.run()
        assert p.value == "cond-fail"

    def test_condition_rejects_foreign_events(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env1, [env2.timeout(1.0)])
