"""FailureSpec: validation, canonicalization, hashing, JSON round-trips,
and its integration with ExperimentConfig labels and cache fingerprints.
"""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import config_fingerprint, config_from_dict, config_to_dict
from repro.failures import FAILURE_NONE, FailureSpec


class TestDefaults:
    def test_default_is_the_failure_free_regime(self):
        assert FailureSpec() == FAILURE_NONE
        assert FailureSpec().is_none
        assert FailureSpec.none() is FAILURE_NONE

    def test_default_has_no_active_hazards(self):
        assert not FAILURE_NONE.has_node_crashes
        assert not FAILURE_NONE.has_attempt_faults

    def test_any_active_hazard_clears_is_none(self):
        assert not FailureSpec(node_crash_rate=0.01).is_none
        assert not FailureSpec(container_kill_rate=0.1).is_none
        assert not FailureSpec(straggler_prob=0.1).is_none
        assert not FailureSpec(timeout_s=5.0).is_none

    def test_hazard_predicates(self):
        assert FailureSpec(node_crash_rate=0.01).has_node_crashes
        assert FailureSpec(container_kill_rate=0.1).has_attempt_faults
        assert FailureSpec(straggler_prob=0.1).has_attempt_faults
        assert not FailureSpec(timeout_s=5.0).has_attempt_faults


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_crash_rate": -0.1},
            {"node_recovery_s": -1.0},
            {"timeout_s": -2.0},
            {"backoff_base_s": -0.5},
            {"container_kill_rate": 1.5},
            {"straggler_prob": -0.2},
            {"straggler_factor": 0.5},
            {"backoff_factor": 0.9},
            {"max_attempts": 0},
            {"max_attempts": 1.5},
            {"crash_inflight": "shrug"},
            {"timeout_s": "soon"},
            {"node_crash_rate": True},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailureSpec(**kwargs)

    def test_numeric_spellings_canonicalize(self):
        # int vs float spellings hash and fingerprint identically.
        a = FailureSpec(timeout_s=2, max_attempts=2.0)
        b = FailureSpec(timeout_s=2.0, max_attempts=2)
        assert a == b
        assert hash(a) == hash(b)
        assert isinstance(a.timeout_s, float)
        assert isinstance(a.max_attempts, int)

    def test_hashable(self):
        regimes = {FailureSpec(): "clean", FailureSpec(timeout_s=1.0): "flaky"}
        assert regimes[FAILURE_NONE] == "clean"


class TestFromParams:
    def test_empty_params_yield_the_shared_none(self):
        assert FailureSpec.from_params(()) is FAILURE_NONE
        assert FailureSpec.from_params(None) is FAILURE_NONE
        assert FailureSpec.from_params({}) is FAILURE_NONE

    def test_pairs_and_mappings_accepted(self):
        from_pairs = FailureSpec.from_params((("timeout_s", 2.0), ("max_attempts", 2)))
        from_map = FailureSpec.from_params({"timeout_s": 2.0, "max_attempts": 2})
        assert from_pairs == from_map == FailureSpec(timeout_s=2.0, max_attempts=2)

    def test_unknown_names_rejected_with_the_valid_list(self):
        with pytest.raises(ValueError, match="unknown failure parameter"):
            FailureSpec.from_params({"node_crashrate": 0.1})
        with pytest.raises(ValueError, match="node_crash_rate"):
            FailureSpec.from_params({"bogus": 1})

    def test_with_returns_an_updated_copy(self):
        spec = FailureSpec(timeout_s=2.0)
        updated = spec.with_(max_attempts=5)
        assert updated.timeout_s == 2.0
        assert updated.max_attempts == 5
        assert spec.max_attempts == 3  # original untouched


class TestJsonForm:
    def test_round_trip(self):
        spec = FailureSpec(
            node_crash_rate=0.01,
            crash_inflight="migrate",
            straggler_prob=0.2,
            timeout_s=4.0,
            max_attempts=2,
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert FailureSpec.from_dict(payload) == spec

    def test_to_dict_covers_every_field(self):
        # The fingerprint hashes this dict: a new field must appear here
        # (and thereby invalidate cached results that predate it).
        import dataclasses

        assert set(FAILURE_NONE.to_dict()) == {
            f.name for f in dataclasses.fields(FailureSpec)
        }

    def test_from_dict_revalidates(self):
        with pytest.raises(ValueError):
            FailureSpec.from_dict({"container_kill_rate": 2.0})


class TestLabel:
    def test_none_has_empty_suffix(self):
        assert FAILURE_NONE.label_suffix() == ""

    def test_suffix_names_only_non_default_fields(self):
        suffix = FailureSpec(timeout_s=2.0, straggler_prob=0.1).label_suffix()
        assert "timeout_s=2.0" in suffix
        assert "straggler_prob=0.1" in suffix
        assert "backoff" not in suffix
        assert suffix.startswith(" failures[")


class TestExperimentConfigIntegration:
    def test_mapping_normalizes_to_spec(self):
        cfg = ExperimentConfig(
            cores=4, intensity=10, policy="FIFO", failures={"timeout_s": 3.0}
        )
        assert isinstance(cfg.failures, FailureSpec)
        assert cfg.failures.timeout_s == 3.0

    def test_none_normalizes_to_the_default(self):
        cfg = ExperimentConfig(cores=4, intensity=10, policy="FIFO", failures=None)
        assert cfg.failures is FAILURE_NONE

    def test_non_spec_rejected(self):
        with pytest.raises(ValueError, match="failures"):
            ExperimentConfig(cores=4, intensity=10, policy="FIFO", failures="chaos")

    def test_label_carries_the_failure_suffix(self):
        clean = ExperimentConfig(cores=4, intensity=10, policy="FIFO")
        faulty = clean.with_(failures=FailureSpec(node_crash_rate=0.01))
        assert "failures[" not in clean.label()
        assert "failures[node_crash_rate=0.01]" in faulty.label()

    def test_fingerprint_sees_the_failure_dimension(self):
        clean = ExperimentConfig(cores=4, intensity=10, policy="FIFO")
        faulty = clean.with_(failures=FailureSpec(timeout_s=1.0))
        assert config_fingerprint(clean) != config_fingerprint(faulty)
        # ...but the explicit default fingerprints like the implicit one.
        assert config_fingerprint(clean) == config_fingerprint(
            clean.with_(failures=FailureSpec.none())
        )

    def test_config_dict_round_trip_preserves_failures(self):
        cfg = ExperimentConfig(
            cores=4,
            intensity=10,
            policy="FIFO",
            failures=FailureSpec(container_kill_rate=0.2, max_attempts=2),
        )
        restored = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
        assert restored == cfg
        assert restored.failures == cfg.failures
