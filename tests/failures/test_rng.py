"""Failure RNG streams: per-(rid, attempt) determinism, draw-order
independence, and hazard frequencies that match the configured rates.
"""

import pytest

from repro.failures import AttemptFault, FailureRng, FailureSpec


KILLY = FailureSpec(container_kill_rate=0.5)
SLOW = FailureSpec(straggler_prob=0.5, straggler_factor=3.0)
BOTH = FailureSpec(container_kill_rate=0.3, straggler_prob=0.3, straggler_factor=2.0)


class TestAttemptFault:
    def test_scale_applies_straggler_then_kill_fraction(self):
        fault = AttemptFault(straggler=3.0, kill_fraction=0.5)
        assert fault.scale(10.0) == pytest.approx(15.0)
        assert fault.kills

    def test_plain_straggler_does_not_kill(self):
        fault = AttemptFault(straggler=4.0)
        assert not fault.kills
        assert fault.scale(2.0) == pytest.approx(8.0)


class TestDeterminism:
    def test_pure_function_of_seed_rid_attempt(self):
        # Fresh FailureRng instances — and repeated queries on one
        # instance — agree draw for draw.
        for rid in range(50):
            for attempt in (1, 2, 3):
                first = FailureRng(7).attempt_fault(BOTH, rid, attempt)
                second = FailureRng(7).attempt_fault(BOTH, rid, attempt)
                assert first == second

    def test_query_order_is_irrelevant(self):
        # Interleaved retries (the parallel engine's reality) cannot
        # reshuffle another call's faults: each (rid, attempt) pair owns
        # a derived generator.
        rng = FailureRng(11)
        forward = [rng.attempt_fault(BOTH, rid, 1) for rid in range(20)]
        backward = [
            FailureRng(11).attempt_fault(BOTH, rid, 1) for rid in reversed(range(20))
        ]
        assert forward == list(reversed(backward))

    def test_seeds_decorrelate(self):
        a = [FailureRng(1).attempt_fault(KILLY, rid, 1) for rid in range(100)]
        b = [FailureRng(2).attempt_fault(KILLY, rid, 1) for rid in range(100)]
        assert a != b

    def test_attempts_decorrelate(self):
        rng = FailureRng(5)
        first = [rng.attempt_fault(KILLY, rid, 1) for rid in range(100)]
        second = [rng.attempt_fault(KILLY, rid, 2) for rid in range(100)]
        assert first != second


class TestHazards:
    def test_no_attempt_hazards_means_no_fault(self):
        rng = FailureRng(3)
        quiet = FailureSpec(timeout_s=5.0, node_crash_rate=0.1)  # no attempt hazards
        assert all(rng.attempt_fault(quiet, rid, 1) is None for rid in range(50))

    def test_kill_rate_matches_frequency(self):
        rng = FailureRng(13)
        faults = [rng.attempt_fault(KILLY, rid, 1) for rid in range(400)]
        kills = [f for f in faults if f is not None and f.kills]
        assert 0.4 < len(kills) / 400 < 0.6
        assert all(0.0 <= f.kill_fraction < 1.0 for f in kills)

    def test_straggler_carries_the_configured_factor(self):
        rng = FailureRng(17)
        faults = [rng.attempt_fault(SLOW, rid, 1) for rid in range(400)]
        stragglers = [f for f in faults if f is not None]
        assert 0.4 < len(stragglers) / 400 < 0.6
        assert all(f.straggler == 3.0 and not f.kills for f in stragglers)


class TestNodeStreams:
    def test_per_ordinal_streams_are_reproducible(self):
        a = FailureRng(9).node_stream(2).random(8).tolist()
        b = FailureRng(9).node_stream(2).random(8).tolist()
        assert a == b

    def test_ordinals_decorrelate(self):
        a = FailureRng(9).node_stream(0).random(8).tolist()
        b = FailureRng(9).node_stream(1).random(8).tolist()
        assert a != b

    def test_node_streams_independent_of_attempt_streams(self):
        # Drawing node schedules never shifts attempt faults (distinct
        # spawn keys, not a shared sequential stream).
        rng = FailureRng(21)
        before = [rng.attempt_fault(KILLY, rid, 1) for rid in range(30)]
        rng.node_stream(0).random(1000)
        after = [rng.attempt_fault(KILLY, rid, 1) for rid in range(30)]
        assert before == after
