"""Tests for the network/middleware latency model."""

import numpy as np
import pytest

from repro.cluster.network import NetworkModel


class TestNetworkModel:
    def test_defaults_sum_to_paper_overhead(self):
        # Table I includes "ca. 10 ms Kafka overhead" round trip.
        net = NetworkModel()
        assert net.round_trip_s == pytest.approx(0.010)

    def test_deterministic_without_jitter(self):
        net = NetworkModel()
        assert net.request_delay() == net.request_delay() == 0.005

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            NetworkModel(jitter_s=0.001)

    def test_jitter_varies_and_stays_nonnegative(self):
        net = NetworkModel(jitter_s=0.01, rng=np.random.default_rng(0))
        delays = [net.request_delay() for _ in range(200)]
        assert len(set(delays)) > 1
        assert all(d >= 0.0 for d in delays)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(request_latency_s=-0.001)
