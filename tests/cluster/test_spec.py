"""Tests for ClusterSpec: validation, canonical form, JSON round-trip."""

import pytest

from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.spec import DEFAULT_CLUSTER, ClusterSpec


class TestValidation:
    def test_default_is_single_node(self):
        spec = ClusterSpec()
        assert spec.nodes == 1
        assert spec.balancer == "least-loaded"
        assert spec.is_default
        assert spec == DEFAULT_CLUSTER

    def test_nodes_must_be_positive(self):
        with pytest.raises(ValueError, match="nodes"):
            ClusterSpec(nodes=0)

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ValueError, match="available"):
            ClusterSpec(balancer="magic")

    def test_unknown_balancer_param_rejected(self):
        with pytest.raises(ValueError, match="valid parameters"):
            ClusterSpec(balancer="power-of-d", balancer_params={"dd": 3})

    def test_bad_balancer_value_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ClusterSpec(balancer="hash-overflow", balancer_params={"capacity_factor": -1})

    def test_balancer_defaults_merged_into_params(self):
        spec = ClusterSpec(balancer="power-of-d")
        assert dict(spec.balancer_params) == {"d": 2}
        explicit = ClusterSpec(balancer="power-of-d", balancer_params={"d": 2})
        assert spec == explicit  # one canonical form per topology

    def test_node_overrides_length_must_match_nodes(self):
        with pytest.raises(ValueError, match="one entry per node"):
            ClusterSpec(nodes=3, node_overrides=({"cores": 2},))

    def test_node_overrides_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="NodeConfig field"):
            ClusterSpec(nodes=1, node_overrides=({"coers": 2},))

    def test_autoscaler_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="autoscaler parameter"):
            ClusterSpec(autoscaler={"max_nodez": 3})

    def test_autoscaler_bad_value_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(autoscaler={"max_nodes": 0})

    def test_autoscaler_defaults_merged(self):
        spec = ClusterSpec(autoscaler=())
        stored = dict(spec.autoscaler)
        assert stored["max_nodes"] == AutoscalerConfig().max_nodes
        assert spec.autoscaler_config() == AutoscalerConfig()

    def test_autoscaler_none_means_disabled(self):
        assert ClusterSpec().autoscaler_config() is None


class TestCanonicalForm:
    def test_mapping_params_normalised_and_sorted(self):
        a = ClusterSpec(balancer="power-of-d", balancer_params={"seed": 5, "d": 3})
        b = ClusterSpec(balancer="power-of-d", balancer_params=(("d", 3), ("seed", 5)))
        assert a == b
        assert a.balancer_params == (("d", 3), ("seed", 5))

    def test_hashable(self):
        assert hash(ClusterSpec(nodes=2)) == hash(ClusterSpec(nodes=2))
        assert {ClusterSpec(nodes=2), ClusterSpec(nodes=2)} == {ClusterSpec(nodes=2)}

    def test_unsupported_param_value_rejected(self):
        with pytest.raises(ValueError, match="unsupported value type"):
            ClusterSpec(balancer="power-of-d", balancer_params={"d": object()})

    def test_node_configs_homogeneous(self):
        from repro.node.config import NodeConfig

        base = NodeConfig(cores=4)
        assert ClusterSpec(nodes=3).node_configs(base) == [base] * 3

    def test_node_configs_heterogeneous(self):
        from repro.node.config import NodeConfig

        base = NodeConfig(cores=4, memory_mb=16384)
        spec = ClusterSpec(
            nodes=2, node_overrides=({"cores": 2}, {"cores": 8, "memory_mb": 32768})
        )
        first, second = spec.node_configs(base)
        assert (first.cores, first.memory_mb) == (2, 16384)
        assert (second.cores, second.memory_mb) == (8, 32768)

    def test_label_suffix(self):
        assert ClusterSpec().label_suffix() == ""
        assert "nodes=3" in ClusterSpec(nodes=3).label_suffix()
        suffix = ClusterSpec(nodes=2, balancer="locality", autoscaler=()).label_suffix()
        assert "balancer=locality" in suffix and "autoscale" in suffix


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            ClusterSpec(),
            ClusterSpec(nodes=4, balancer="power-of-d", balancer_params={"d": 3}),
            ClusterSpec(nodes=2, node_overrides=({"cores": 2}, {"cores": 8})),
            ClusterSpec(autoscaler={"max_nodes": 6, "provisioning_delay_s": 10.0}),
        ],
    )
    def test_round_trip(self, spec):
        import json

        payload = json.loads(json.dumps(spec.to_dict()))
        assert ClusterSpec.from_dict(payload) == spec


class TestParamTypeValidation:
    """Wrong-typed balancer params must fail as ValueError at spec
    construction, never as a TypeError deep inside a run."""

    def test_string_valued_d_rejected(self):
        with pytest.raises(ValueError, match="d"):
            ClusterSpec(balancer="power-of-d", balancer_params={"d": "3"})

    def test_non_integral_d_rejected(self):
        # d=2.5 truncating to 2 would let distinct fingerprints simulate
        # identically.
        with pytest.raises(ValueError, match="integer"):
            ClusterSpec(balancer="power-of-d", balancer_params={"d": 2.5})

    def test_bool_d_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            ClusterSpec(balancer="power-of-d", balancer_params={"d": True})

    def test_string_capacity_factor_rejected(self):
        with pytest.raises(ValueError, match="capacity_factor"):
            ClusterSpec(
                balancer="hash-overflow", balancer_params={"capacity_factor": "big"}
            )

    def test_string_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ClusterSpec(balancer="power-of-d", balancer_params={"seed": "abc"})
