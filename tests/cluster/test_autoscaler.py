"""Tests for the reactive autoscaler extension."""

import numpy as np
import pytest

from repro.cluster.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.cluster.platform import FaaSPlatform
from repro.node.baseline import BaselineInvoker
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.workload.functions import sebs_catalog
from repro.workload.scenarios import uniform_burst


def run_with_autoscaler(policy="baseline", autoscaler_config=None, intensity=60):
    env = Environment()
    node_config = NodeConfig(cores=4)
    if policy == "baseline":
        first = BaselineInvoker(env, node_config, name="node-0")
    else:
        first = Invoker(env, node_config, policy=policy, name="node-0")
    first.warm_up(sebs_catalog())
    invokers = [first]
    autoscaler = ReactiveAutoscaler(
        env, invokers, node_config,
        config=autoscaler_config or AutoscalerConfig(max_nodes=3),
    )
    scenario = uniform_burst(4, intensity, np.random.default_rng(1))
    platform = FaaSPlatform(env, invokers)
    records = platform.run_scenario(scenario)
    return autoscaler, records


class TestAutoscalerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(max_nodes=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(provisioning_delay_s=-1.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_out_outstanding_per_core=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(check_interval_s=0.0)


class TestReactiveAutoscaler:
    def test_scales_out_under_overload(self):
        autoscaler, records = run_with_autoscaler(intensity=90)
        assert autoscaler.fleet_size > 1
        assert autoscaler.scale_events
        # New nodes arrive only after the provisioning delay.
        first_event_time, _ = autoscaler.scale_events[0]
        assert first_event_time >= AutoscalerConfig().provisioning_delay_s

    def test_respects_max_nodes(self):
        config = AutoscalerConfig(max_nodes=2, provisioning_delay_s=5.0)
        autoscaler, _ = run_with_autoscaler(autoscaler_config=config, intensity=90)
        assert autoscaler.fleet_size <= 2

    def test_no_scale_out_when_idle(self):
        config = AutoscalerConfig(max_nodes=4)
        autoscaler, _ = run_with_autoscaler(autoscaler_config=config, intensity=5)
        assert autoscaler.fleet_size == 1
        assert not autoscaler.scale_events

    def test_all_requests_still_served(self):
        _, records = run_with_autoscaler(intensity=60)
        assert len(records) == 264  # 1.1 * 4 * 60

    def test_scaled_nodes_receive_load(self):
        autoscaler, records = run_with_autoscaler(intensity=90)
        if autoscaler.fleet_size > 1:
            invokers_used = {r.invoker for r in records}
            assert any(name.startswith("scaled-") for name in invokers_used)

    def test_our_policy_fleet_scales_too(self):
        autoscaler, records = run_with_autoscaler(policy="FC", intensity=90)
        assert len(records) == 396
        # The factory clones the policy type onto new nodes.
        if autoscaler.fleet_size > 1:
            assert type(autoscaler.invokers[-1].policy).name == "FC"

    def test_default_factory_preserves_policy_params_and_estimator(self):
        # The default factory must clone a parameterized reference policy
        # faithfully — constructor params recovered from same-named
        # attributes, estimator window/horizon carried over.
        from repro.scheduling.estimator import RuntimeEstimator
        from repro.scheduling.extra import EtasLike

        env = Environment()
        node_config = NodeConfig(cores=4)
        reference = Invoker(
            env,
            node_config,
            policy=EtasLike(RuntimeEstimator(window=7, frequency_horizon=45.0), alpha=0.7),
            name="node-0",
        )
        autoscaler = ReactiveAutoscaler(env, [reference], node_config)
        scaled = autoscaler._factory(1)
        assert type(scaled.policy) is EtasLike
        assert scaled.policy.alpha == 0.7
        assert scaled.policy.estimator.window == 7
        assert scaled.policy.estimator.frequency_horizon == 45.0

    def test_scheduling_handles_peak_autoscaler_too_late(self):
        # The paper's argument: during a 60 s burst, a 30 s provisioning
        # delay means the autoscaler's capacity arrives when most of the
        # damage is done.  FC on a fixed single node should beat the
        # autoscaled baseline's mean response.
        import numpy as np

        base_autoscaled, base_records = run_with_autoscaler("baseline", intensity=90)
        _, fc_records = run_with_autoscaler(
            "FC", AutoscalerConfig(max_nodes=1), intensity=90
        )
        base_mean = float(np.mean([r.response_time for r in base_records]))
        fc_mean = float(np.mean([r.response_time for r in fc_records]))
        assert fc_mean < base_mean
