"""Tests for the load balancers."""

import pytest

from repro.cluster.controller import (
    BALANCERS,
    HashOverflowBalancer,
    LeastLoadedBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


class FakeInvoker:
    def __init__(self, outstanding=0, cores=10):
        self.outstanding = outstanding
        self.config = type("Cfg", (), {"cores": cores})()


def req(name="graph-bfs", rid=0):
    return Request(rid, catalog_by_name()[name], 0.0, 1.0)


class TestRoundRobin:
    def test_cycles(self):
        balancer = RoundRobinBalancer([FakeInvoker() for _ in range(3)])
        picks = [balancer.pick(req(rid=i)) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestLeastLoaded:
    def test_picks_minimum(self):
        invokers = [FakeInvoker(5), FakeInvoker(1), FakeInvoker(3)]
        balancer = LeastLoadedBalancer(invokers)
        assert balancer.pick(req()) == 1

    def test_tie_breaks_by_index(self):
        invokers = [FakeInvoker(2), FakeInvoker(2)]
        balancer = LeastLoadedBalancer(invokers)
        assert balancer.pick(req()) == 0


class TestHashOverflow:
    def test_same_function_same_home_when_idle(self):
        invokers = [FakeInvoker() for _ in range(4)]
        balancer = HashOverflowBalancer(invokers)
        picks = {balancer.pick(req(rid=i)) for i in range(5)}
        assert len(picks) == 1  # deterministic home

    def test_different_functions_spread(self):
        invokers = [FakeInvoker() for _ in range(4)]
        balancer = HashOverflowBalancer(invokers)
        homes = {
            name: balancer.pick(req(name))
            for name in ("graph-bfs", "sleep", "dna-visualisation", "uploader",
                         "compression", "thumbnailer")
        }
        assert len(set(homes.values())) > 1

    def test_overflow_to_next(self):
        invokers = [FakeInvoker(outstanding=100, cores=10) for _ in range(3)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        home = HashOverflowBalancer([FakeInvoker() for _ in range(3)]).pick(req("sleep"))
        invokers_partial = [FakeInvoker(100, 10) for _ in range(3)]
        invokers_partial[(home + 1) % 3] = FakeInvoker(0, 10)
        balancer = HashOverflowBalancer(invokers_partial, capacity_factor=2.0)
        assert balancer.pick(req("sleep")) == (home + 1) % 3

    def test_all_overloaded_falls_back_to_least_loaded(self):
        invokers = [FakeInvoker(90, 10), FakeInvoker(50, 10), FakeInvoker(70, 10)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        assert balancer.pick(req()) == 1

    def test_invalid_capacity_factor(self):
        with pytest.raises(ValueError):
            HashOverflowBalancer([FakeInvoker()], capacity_factor=0.0)


class TestRegistry:
    def test_all_registered(self):
        assert set(BALANCERS) == {"round-robin", "least-loaded", "hash-overflow"}

    def test_make_balancer(self):
        balancer = make_balancer("round-robin", [FakeInvoker()])
        assert isinstance(balancer, RoundRobinBalancer)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_balancer("magic", [FakeInvoker()])

    def test_empty_invokers_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBalancer([])
