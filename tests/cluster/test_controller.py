"""Tests for the load balancers."""

import pytest

from repro.cluster.controller import (
    BALANCERS,
    HashOverflowBalancer,
    LeastLoadedBalancer,
    LocalityBalancer,
    PowerOfDChoicesBalancer,
    RoundRobinBalancer,
    balancer_names,
    make_balancer,
    validate_balancer_params,
)
from repro.workload.functions import catalog_by_name
from repro.workload.generator import Request


class FakePool:
    def __init__(self, warm=None):
        self._warm = dict(warm or {})

    def warm_count(self, spec):
        return self._warm.get(spec.name, 0)


class FakeInvoker:
    def __init__(self, outstanding=0, cores=10, warm=None):
        self.outstanding = outstanding
        self.config = type("Cfg", (), {"cores": cores})()
        self.pool = FakePool(warm)


def req(name="graph-bfs", rid=0):
    return Request(rid, catalog_by_name()[name], 0.0, 1.0)


class TestRoundRobin:
    def test_cycles(self):
        balancer = RoundRobinBalancer([FakeInvoker() for _ in range(3)])
        picks = [balancer.pick(req(rid=i)) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestLeastLoaded:
    def test_picks_minimum(self):
        invokers = [FakeInvoker(5), FakeInvoker(1), FakeInvoker(3)]
        balancer = LeastLoadedBalancer(invokers)
        assert balancer.pick(req()) == 1

    def test_tie_breaks_by_index(self):
        invokers = [FakeInvoker(2), FakeInvoker(2)]
        balancer = LeastLoadedBalancer(invokers)
        assert balancer.pick(req()) == 0


class TestHashOverflow:
    def test_same_function_same_home_when_idle(self):
        invokers = [FakeInvoker() for _ in range(4)]
        balancer = HashOverflowBalancer(invokers)
        picks = {balancer.pick(req(rid=i)) for i in range(5)}
        assert len(picks) == 1  # deterministic home

    def test_different_functions_spread(self):
        invokers = [FakeInvoker() for _ in range(4)]
        balancer = HashOverflowBalancer(invokers)
        homes = {
            name: balancer.pick(req(name))
            for name in ("graph-bfs", "sleep", "dna-visualisation", "uploader",
                         "compression", "thumbnailer")
        }
        assert len(set(homes.values())) > 1

    def test_overflow_to_next(self):
        invokers = [FakeInvoker(outstanding=100, cores=10) for _ in range(3)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        home = HashOverflowBalancer([FakeInvoker() for _ in range(3)]).pick(req("sleep"))
        invokers_partial = [FakeInvoker(100, 10) for _ in range(3)]
        invokers_partial[(home + 1) % 3] = FakeInvoker(0, 10)
        balancer = HashOverflowBalancer(invokers_partial, capacity_factor=2.0)
        assert balancer.pick(req("sleep")) == (home + 1) % 3

    def test_all_overloaded_falls_back_to_least_loaded(self):
        invokers = [FakeInvoker(90, 10), FakeInvoker(50, 10), FakeInvoker(70, 10)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        assert balancer.pick(req()) == 1

    def test_invalid_capacity_factor(self):
        with pytest.raises(ValueError):
            HashOverflowBalancer([FakeInvoker()], capacity_factor=0.0)


class TestHashOverflowSpills:
    """Spill accounting: picks that leave the home invoker are counted."""

    def test_home_pick_is_not_a_spill(self):
        balancer = HashOverflowBalancer([FakeInvoker() for _ in range(3)])
        balancer.pick(req("sleep"))
        assert balancer.stats.spills == 0

    def test_ring_step_counts_one_spill(self):
        home = HashOverflowBalancer([FakeInvoker() for _ in range(3)]).pick(req("sleep"))
        invokers = [FakeInvoker(0, 10) for _ in range(3)]
        invokers[home] = FakeInvoker(100, 10)  # home over threshold
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        assert balancer.pick(req("sleep")) == (home + 1) % 3
        assert balancer.stats.spills == 1

    def test_total_overload_fallback_counts_one_spill(self):
        invokers = [FakeInvoker(90, 10), FakeInvoker(50, 10), FakeInvoker(70, 10)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        balancer.pick(req("sleep"))
        assert balancer.stats.spills == 1

    def test_spill_rate_uses_platform_pick_counter(self):
        invokers = [FakeInvoker(100, 10) for _ in range(2)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        for i in range(4):
            balancer.pick(req(rid=i))
            balancer.stats.picks += 1  # the platform increments per call
        assert balancer.stats.spills == 4
        assert balancer.stats.spill_rate == 1.0

    def test_spill_rate_zero_without_picks(self):
        balancer = HashOverflowBalancer([FakeInvoker()])
        assert balancer.stats.spill_rate == 0.0


class TestPowerOfD:
    def test_picks_least_loaded_of_sample(self):
        # d >= n degenerates to global least-loaded: deterministic.
        invokers = [FakeInvoker(5), FakeInvoker(1), FakeInvoker(3)]
        balancer = PowerOfDChoicesBalancer(invokers, d=3)
        assert balancer.pick(req()) == 1

    def test_deterministic_for_seed(self):
        invokers = [FakeInvoker(i) for i in range(8)]
        a = PowerOfDChoicesBalancer(invokers, d=2, seed=7)
        b = PowerOfDChoicesBalancer(invokers, d=2, seed=7)
        assert [a.pick(req(rid=i)) for i in range(50)] == [
            b.pick(req(rid=i)) for i in range(50)
        ]

    def test_different_seeds_sample_differently(self):
        invokers = [FakeInvoker(i) for i in range(8)]
        a = PowerOfDChoicesBalancer(invokers, d=2, seed=1)
        b = PowerOfDChoicesBalancer(invokers, d=2, seed=2)
        assert [a.pick(req(rid=i)) for i in range(50)] != [
            b.pick(req(rid=i)) for i in range(50)
        ]

    def test_sample_never_exceeds_fleet(self):
        invokers = [FakeInvoker(), FakeInvoker()]
        balancer = PowerOfDChoicesBalancer(invokers, d=5)
        assert balancer.pick(req()) in (0, 1)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            PowerOfDChoicesBalancer([FakeInvoker()], d=0)


class TestLocality:
    def test_prefers_warm_holder(self):
        invokers = [
            FakeInvoker(outstanding=3),
            FakeInvoker(outstanding=5, warm={"graph-bfs": 2}),
            FakeInvoker(outstanding=0),
        ]
        balancer = LocalityBalancer(invokers)
        assert balancer.pick(req("graph-bfs")) == 1
        assert balancer.stats.spills == 0

    def test_most_warm_wins_then_load_then_index(self):
        invokers = [
            FakeInvoker(outstanding=1, warm={"graph-bfs": 1}),
            FakeInvoker(outstanding=9, warm={"graph-bfs": 3}),
            FakeInvoker(outstanding=0, warm={"graph-bfs": 3}),
        ]
        balancer = LocalityBalancer(invokers)
        assert balancer.pick(req("graph-bfs")) == 2  # most warm, lighter load

    def test_overloaded_warm_holder_spills(self):
        invokers = [
            FakeInvoker(outstanding=100, cores=10, warm={"graph-bfs": 2}),
            FakeInvoker(outstanding=0, cores=10),
        ]
        balancer = LocalityBalancer(invokers, capacity_factor=2.0)
        pick = balancer.pick(req("graph-bfs"))
        assert pick == 1  # the only under-threshold invoker
        assert balancer.stats.spills == 1

    def test_no_warm_holders_spills_deterministically(self):
        invokers = [FakeInvoker() for _ in range(3)]
        balancer = LocalityBalancer(invokers)
        first = balancer.pick(req("sleep"))
        again = LocalityBalancer([FakeInvoker() for _ in range(3)]).pick(req("sleep"))
        assert first == again  # hash-ring fallback, not arrival order
        assert balancer.stats.spills == 1

    def test_invoker_without_pool_counts_as_cold(self):
        bare = FakeInvoker()
        del bare.pool
        invokers = [bare, FakeInvoker(warm={"graph-bfs": 1})]
        balancer = LocalityBalancer(invokers)
        assert balancer.pick(req("graph-bfs")) == 1

    def test_invalid_capacity_factor(self):
        with pytest.raises(ValueError):
            LocalityBalancer([FakeInvoker()], capacity_factor=-1.0)


class TestLiveInvokerList:
    """The live-list contract of ``LoadBalancer.__init__``: appending to
    the list mid-run (what :class:`ReactiveAutoscaler` does) makes the
    new invoker routable immediately, for every balancer flavour."""

    def test_least_loaded_routes_to_appended_idle_node(self):
        invokers = [FakeInvoker(outstanding=10), FakeInvoker(outstanding=10)]
        balancer = LeastLoadedBalancer(invokers)
        invokers.append(FakeInvoker(outstanding=0))
        assert balancer.pick(req()) == 2

    def test_round_robin_cycle_grows_with_the_list(self):
        invokers = [FakeInvoker(), FakeInvoker()]
        balancer = RoundRobinBalancer(invokers)
        assert [balancer.pick(req(rid=i)) for i in range(2)] == [0, 1]
        invokers.append(FakeInvoker())
        assert [balancer.pick(req(rid=i)) for i in range(3)] == [0, 1, 2]

    def test_hash_overflow_ring_covers_appended_node(self):
        invokers = [FakeInvoker(100, 10), FakeInvoker(100, 10)]
        balancer = HashOverflowBalancer(invokers, capacity_factor=2.0)
        invokers.append(FakeInvoker(0, 10))
        assert balancer.pick(req()) == 2  # only under-threshold node

    def test_power_of_d_samples_appended_node(self):
        invokers = [FakeInvoker(outstanding=50)]
        balancer = PowerOfDChoicesBalancer(invokers, d=2, seed=3)
        invokers.append(FakeInvoker(outstanding=0))
        # d >= fleet size: both probed, the appended idle node wins.
        assert balancer.pick(req()) == 1

    def test_locality_sees_warm_containers_on_appended_node(self):
        invokers = [FakeInvoker(outstanding=4)]
        balancer = LocalityBalancer(invokers)
        invokers.append(FakeInvoker(outstanding=0, warm={"graph-bfs": 1}))
        assert balancer.pick(req("graph-bfs")) == 1

    def test_tuple_input_is_copied_not_aliased(self):
        invokers = (FakeInvoker(), FakeInvoker())
        balancer = LeastLoadedBalancer(invokers)
        assert isinstance(balancer.invokers, list)
        assert balancer.invokers is not invokers


class TestRegistry:
    def test_all_registered(self):
        assert set(BALANCERS) == {
            "round-robin",
            "least-loaded",
            "hash-overflow",
            "power-of-d",
            "locality",
        }
        assert balancer_names() == sorted(BALANCERS)

    def test_make_balancer(self):
        balancer = make_balancer("round-robin", [FakeInvoker()])
        assert isinstance(balancer, RoundRobinBalancer)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="available"):
            make_balancer("magic", [FakeInvoker()])

    def test_empty_invokers_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinBalancer([])

    def test_seed_forwarded_only_where_declared(self):
        sampled = make_balancer("power-of-d", [FakeInvoker(), FakeInvoker()], seed=9)
        twin = PowerOfDChoicesBalancer([FakeInvoker(), FakeInvoker()], seed=9)
        assert [sampled.pick(req(rid=i)) for i in range(10)] == [
            twin.pick(req(rid=i)) for i in range(10)
        ]
        # least-loaded declares no seed: the kwarg must not reach it.
        assert isinstance(
            make_balancer("least-loaded", [FakeInvoker()], seed=9), LeastLoadedBalancer
        )

    def test_kwargs_seed_wins_over_injected_seed(self):
        # make_balancer ignores the injected seed when kwargs carry one
        # (the runner pops an explicit balancer param into `seed`).
        explicit = make_balancer(
            "power-of-d", [FakeInvoker() for _ in range(6)], seed=9, d=2
        )
        via_kwargs = PowerOfDChoicesBalancer(
            [FakeInvoker() for _ in range(6)], d=2, seed=9
        )
        assert [explicit.pick(req(rid=i)) for i in range(20)] == [
            via_kwargs.pick(req(rid=i)) for i in range(20)
        ]


class TestValidateBalancerParams:
    def test_unknown_balancer(self):
        with pytest.raises(ValueError, match="available"):
            validate_balancer_params("magic")

    def test_unknown_param(self):
        with pytest.raises(ValueError, match="valid parameters"):
            validate_balancer_params("power-of-d", {"dd": 3})

    def test_bad_value_fails_at_validation_time(self):
        with pytest.raises(ValueError):
            validate_balancer_params("hash-overflow", {"capacity_factor": 0.0})

    def test_merges_declared_defaults(self):
        assert validate_balancer_params("power-of-d", {}) == {"d": 2}
        assert validate_balancer_params("power-of-d", {"d": 4}) == {"d": 4}
        assert validate_balancer_params("hash-overflow") == {"capacity_factor": 2.0}

    def test_seed_excluded_from_defaults_but_accepted_explicitly(self):
        assert "seed" not in validate_balancer_params("power-of-d")
        assert validate_balancer_params("power-of-d", {"seed": 5}) == {
            "d": 2,
            "seed": 5,
        }
