"""Integration tests for the FaaSPlatform façade."""

import numpy as np
import pytest

from repro.cluster.controller import RoundRobinBalancer
from repro.cluster.network import NetworkModel
from repro.cluster.platform import FaaSPlatform
from repro.node.config import NodeConfig
from repro.node.invoker import Invoker
from repro.sim.core import Environment
from repro.workload.functions import sebs_catalog
from repro.workload.scenarios import uniform_burst


def build(env, n_invokers=1, policy="FIFO", cores=4):
    config = NodeConfig(cores=cores, memory_mb=16384)
    invokers = [
        Invoker(env, config, policy=policy, name=f"node-{i}") for i in range(n_invokers)
    ]
    for invoker in invokers:
        invoker.warm_up(sebs_catalog())
    return invokers


class TestPlatform:
    def test_every_request_gets_a_record(self):
        env = Environment()
        invokers = build(env)
        scenario = uniform_burst(4, 10, np.random.default_rng(0))
        platform = FaaSPlatform(env, invokers)
        records = platform.run_scenario(scenario)
        assert len(records) == len(scenario)
        assert [r.rid for r in records] == sorted(r.rid for r in scenario)

    def test_empty_scenario(self):
        env = Environment()
        invokers = build(env)
        scenario = uniform_burst(4, 10, np.random.default_rng(0))
        scenario.requests = []
        platform = FaaSPlatform(env, invokers)
        assert platform.run_scenario(scenario) == []

    def test_response_time_includes_network_overhead(self):
        env = Environment()
        invokers = build(env)
        network = NetworkModel(request_latency_s=0.1, response_latency_s=0.2)
        scenario = uniform_burst(4, 10, np.random.default_rng(0))
        platform = FaaSPlatform(env, invokers, network=network)
        records = platform.run_scenario(scenario)
        assert all(r.response_time >= 0.3 for r in records)

    def test_received_at_is_release_plus_request_leg(self):
        env = Environment()
        invokers = build(env)
        scenario = uniform_burst(4, 10, np.random.default_rng(0))
        platform = FaaSPlatform(env, invokers)
        records = platform.run_scenario(scenario)
        for record in records:
            assert record.received_at == pytest.approx(record.release_time + 0.005)

    def test_multi_invoker_round_robin_spreads_load(self):
        env = Environment()
        invokers = build(env, n_invokers=3)
        scenario = uniform_burst(4, 30, np.random.default_rng(0))
        platform = FaaSPlatform(env, invokers, balancer=RoundRobinBalancer(invokers))
        records = platform.run_scenario(scenario)
        by_invoker = {name: 0 for name in ("node-0", "node-1", "node-2")}
        for record in records:
            by_invoker[record.invoker] += 1
        counts = list(by_invoker.values())
        assert max(counts) - min(counts) <= 1

    def test_no_invokers_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FaaSPlatform(env, [])

    def test_completions_cover_all_functions(self):
        env = Environment()
        invokers = build(env)
        scenario = uniform_burst(4, 10, np.random.default_rng(1))
        platform = FaaSPlatform(env, invokers)
        records = platform.run_scenario(scenario)
        assert {r.function_name for r in records} == {
            s.name for s in sebs_catalog()
        }
