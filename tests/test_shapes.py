"""Shape-regression tests: the paper's qualitative claims must hold.

These are the reproduction's acceptance tests.  They run scaled-down but
real experiments and pin the *orderings and crossovers* the paper
reports — not absolute numbers (our substrate is a simulator, not the
authors' testbed).  If a refactoring breaks one of these, the
reproduction no longer reproduces the paper.
"""

import pytest

from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.runner import run_experiment, run_multi_node_experiment

pytestmark = pytest.mark.shape


def summary(cores, intensity, policy, seed=1, **kwargs):
    cfg = ExperimentConfig(
        cores=cores, intensity=intensity, policy=policy, seed=seed, **kwargs
    )
    return run_experiment(cfg)


class TestSingleNodeShapes:
    def test_loaded_system_fc_beats_baseline_by_factors(self):
        # Headline: "in a loaded system, our method decreases the average
        # response time by a factor of 4 ... average stretch by 18".
        base = summary(20, 120, "baseline").summary()
        fc = summary(20, 120, "FC").summary()
        assert base.mean_response_time / fc.mean_response_time > 3.0
        assert base.mean_stretch / fc.mean_stretch > 10.0

    def test_sept_and_fc_beat_fifo_everywhere_loaded(self):
        for cores, intensity in ((10, 60), (20, 40)):
            fifo = summary(cores, intensity, "FIFO").summary()
            sept = summary(cores, intensity, "SEPT").summary()
            fc = summary(cores, intensity, "FC").summary()
            assert sept.mean_response_time < fifo.mean_response_time
            assert fc.mean_response_time < fifo.mean_response_time
            assert sept.mean_stretch < fifo.mean_stretch
            assert fc.mean_stretch < fifo.mean_stretch

    def test_sept_fc_median_close_to_idle(self):
        # Paper Fig. 3/4: SEPT/FC median response stays ~1-2 s even under
        # load (short calls fly) while FIFO's median is tens of seconds.
        fifo = summary(20, 40, "FIFO").summary()
        sept = summary(20, 40, "SEPT").summary()
        assert sept.response_time_percentiles[50] < 5.0
        assert fifo.response_time_percentiles[50] > 20.0

    def test_baseline_collapses_at_20_cores(self):
        # Paper Sect. VII-C / Table III: at 20 cores the baseline is the
        # worst strategy by a wide margin.
        base = summary(20, 40, "baseline").summary()
        fifo = summary(20, 40, "FIFO").summary()
        assert base.mean_response_time > 2.0 * fifo.mean_response_time

    def test_crossover_baseline_wins_at_5_cores_low_intensity(self):
        # Table II, first row: at 5 cores / intensity 30 the baseline
        # completes the burst FASTER than our FIFO (I/O overlap wins when
        # management overheads are small).
        base = summary(5, 30, "baseline")
        fifo = summary(5, 30, "FIFO")
        assert fifo.makespan > base.makespan

    def test_fifo_beats_baseline_makespan_at_20_cores(self):
        # Table II, last row: at 20 cores our FIFO completes in ~0.6x the
        # baseline's time.
        base = summary(20, 120, "baseline")
        fifo = summary(20, 120, "FIFO")
        assert fifo.makespan < 0.8 * base.makespan

    def test_baseline_degrades_with_intensity(self):
        prev = 0.0
        for intensity in (30, 60, 120):
            mean = summary(10, intensity, "baseline").summary().mean_response_time
            assert mean > prev
            prev = mean

    def test_eect_rect_between_fifo_and_sept(self):
        fifo = summary(10, 60, "FIFO").summary().mean_stretch
        sept = summary(10, 60, "SEPT").summary().mean_stretch
        eect = summary(10, 60, "EECT").summary().mean_stretch
        rect = summary(10, 60, "RECT").summary().mean_stretch
        assert sept < eect < fifo or sept < eect < 1.5 * fifo
        assert sept < rect < fifo or sept < rect < 1.5 * fifo


class TestColdStartShapes:
    def test_baseline_cold_starts_grow_with_intensity(self):
        colds = [
            summary(10, intensity, "baseline").cold_starts
            for intensity in (30, 60, 120)
        ]
        assert colds[0] < colds[1] < colds[2]
        # Fig. 2a: at intensity 120 over 80% of the 1320 requests cold-start.
        assert colds[2] > 0.6 * 1320

    def test_our_fifo_no_cold_starts_at_32gib(self):
        # Fig. 2b: from 32 GiB our approach's cold starts vanish (10 cores).
        assert summary(10, 120, "FIFO").cold_starts == 0

    def test_our_fifo_cold_starts_at_tiny_memory(self):
        assert summary(10, 60, "FIFO", memory_mb=4096).cold_starts > 0

    def test_baseline_cold_starts_insensitive_to_memory(self):
        # Fig. 2a: the baseline's cold-start count barely depends on memory.
        small = summary(10, 120, "baseline", memory_mb=16384).cold_starts
        large = summary(10, 120, "baseline", memory_mb=131072).cold_starts
        assert small > 0.5 * 1320 and large > 0.5 * 1320


class TestFairnessShape:
    def test_fc_fairer_than_sept_for_rare_long_function(self):
        # Paper Fig. 5(b): FC cuts the rare dna-visualisation stretch vs
        # SEPT (5.3 -> 2.1 average in the paper).
        import numpy as np

        def rare_stretch(policy):
            values = []
            for seed in (1, 2):
                result = run_experiment(ExperimentConfig(
                    cores=10, intensity=90, policy=policy, seed=seed,
                    scenario="skewed",
                ))
                values += [r.stretch for r in result.records_for("dna-visualisation")]
            return float(np.mean(values))

        assert rare_stretch("FC") < rare_stretch("SEPT")


class TestMultiNodeShape:
    def test_fc_on_3_nodes_beats_baseline_on_4(self):
        # The paper's capacity-reduction headline (Sect. VIII).
        def pooled(nodes, policy):
            cfg = MultiNodeConfig(
                nodes=nodes, cores_per_node=18, total_requests=2376,
                policy=policy, seed=1,
            )
            return run_multi_node_experiment(cfg).summary()

        base4 = pooled(4, "baseline")
        fc3 = pooled(3, "FC")
        assert fc3.mean_response_time < base4.mean_response_time
        assert fc3.response_time_percentiles[75] < base4.response_time_percentiles[75]
