"""Adaptive seed allocation: spend fewer runs where pairs separate early.

Pins the allocator's contract: a clearly separated pair stops at the
initial batch (fewer total runs than the fixed-budget protocol — ISSUE
7's CI smoke asserts the same thing end-to-end), an indistinguishable
pair exhausts its budget without ever claiming convergence, budgets are
validated before any simulation, and grid mode shares a strategy's runs
across the pairs that reference it.
"""

import pytest

from repro.experiments.adaptive import (
    allocate_seeds,
    run_adaptive_grid,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridSpec

#: FC vs FIFO at (4 cores, intensity 30) separates on mean stretch at 5
#: seeds (Cliff's δ = -1.0); FC vs baseline at intensity 20 does not
#: separate even at 20+ seeds.  Both facts are deterministic given seeds.
SEPARATED = ("FC", "FIFO", 30)
INDISTINGUISHABLE = ("FC", "baseline", 20)


def config(policy: str, intensity: int) -> ExperimentConfig:
    return ExperimentConfig(cores=4, intensity=intensity, policy=policy)


class TestAllocateSeeds:
    def test_separated_pair_converges_at_initial_batch(self):
        policy_a, policy_b, intensity = SEPARATED
        allocation = allocate_seeds(
            config(policy_a, intensity),
            config(policy_b, intensity),
            initial_seeds=5,
            max_seeds=20,
            batch=5,
            resamples=300,
        )
        assert allocation.converged
        assert allocation.seeds == (1, 2, 3, 4, 5)
        assert allocation.total_runs == 10
        assert allocation.fixed_equivalent_runs == 40
        assert allocation.runs_saved == 30
        assert allocation.rounds == ((5, True),)
        assert allocation.comparison.all_separated()

    def test_indistinguishable_pair_exhausts_budget(self):
        policy_a, policy_b, intensity = INDISTINGUISHABLE
        allocation = allocate_seeds(
            config(policy_a, intensity),
            config(policy_b, intensity),
            initial_seeds=3,
            max_seeds=9,
            batch=3,
            resamples=200,
        )
        assert not allocation.converged
        assert allocation.total_runs == 18  # both sides at max_seeds
        assert allocation.runs_saved == 0
        assert [n for n, _ in allocation.rounds] == [3, 6, 9]
        assert not any(separated for _, separated in allocation.rounds)

    def test_explicit_seed_prefix_is_reused_and_extended(self):
        policy_a, policy_b, intensity = SEPARATED
        allocation = allocate_seeds(
            config(policy_a, intensity),
            config(policy_b, intensity),
            seeds=(11, 12, 13),
            initial_seeds=3,
            max_seeds=5,
            batch=2,
            resamples=200,
        )
        # The explicit prefix comes first; fresh integers extend it.
        assert allocation.seeds[:3] == (11, 12, 13)
        assert len(set(allocation.seeds)) == len(allocation.seeds)

    def test_results_carry_the_requested_configs(self):
        policy_a, policy_b, intensity = SEPARATED
        allocation = allocate_seeds(
            config(policy_a, intensity),
            config(policy_b, intensity),
            initial_seeds=2,
            max_seeds=2,
            batch=1,
            resamples=100,
        )
        assert [r.config.policy for r in allocation.results_a] == [policy_a] * 2
        assert [r.config.policy for r in allocation.results_b] == [policy_b] * 2
        assert [r.config.seed for r in allocation.results_a] == [1, 2]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(initial_seeds=1), "initial_seeds"),
            (dict(batch=0), "batch"),
            (dict(initial_seeds=5, max_seeds=3), "max_seeds"),
            (dict(seeds=(1, 2, 2), initial_seeds=2, max_seeds=3), "duplicates"),
        ],
    )
    def test_bad_budgets_fail_before_any_run(self, kwargs, match):
        policy_a, policy_b, intensity = SEPARATED
        with pytest.raises(ValueError, match=match):
            allocate_seeds(
                config(policy_a, intensity), config(policy_b, intensity), **kwargs
            )


class TestAdaptiveGrid:
    def test_converged_pair_uses_fewer_runs_than_fixed_protocol(self):
        spec = GridSpec(
            cores=(4,),
            intensities=(30,),
            strategies=("FC", "FIFO"),
            seeds=(1, 2, 3, 4, 5),
        )
        grid = run_adaptive_grid(spec, max_seeds=20, batch=5, resamples=300)
        assert grid.total_runs < grid.fixed_equivalent_runs
        assert grid.converged() == [(4, 30, "FC", "FIFO")]
        assert "saved" in grid.render()

    def test_shared_reference_strategy_is_run_once(self):
        """FC appears in both pairs; its runs must be counted once, so
        the grid total is below two independent pair allocations."""
        spec = GridSpec(
            cores=(4,),
            intensities=(30,),
            strategies=("FC", "FIFO", "SEPT"),
            seeds=(1, 2, 3, 4, 5),
        )
        grid = run_adaptive_grid(spec, max_seeds=10, batch=5, resamples=200)
        pair_runs = sum(a.total_runs for a in grid.allocations.values())
        assert grid.total_runs == pair_runs  # per-pair counters are disjoint
        assert grid.fixed_equivalent_runs == 3 * 10  # three strategies, once each
        # FC vs FIFO converges at 5 seeds; FC vs SEPT then extends the
        # shared FC store, whose first 5 runs are not re-launched.
        assert grid.total_runs < 2 * 2 * 10

    def test_custom_pairs_and_validation(self):
        spec = GridSpec(
            cores=(4,),
            intensities=(30,),
            strategies=("FC", "FIFO", "SEPT"),
            seeds=(1, 2, 3),
        )
        with pytest.raises(ValueError, match="absent from"):
            run_adaptive_grid(spec, pairs=[("FC", "EECT")], max_seeds=4)
        with pytest.raises(ValueError, match="comparable"):
            run_adaptive_grid(spec, pairs=[("FC", "FC")], max_seeds=4)

    def test_cluster_sweep_is_rejected(self):
        spec = GridSpec(
            cores=(4,),
            intensities=(30,),
            strategies=("FC", "FIFO"),
            seeds=(1, 2, 3),
            nodes=(1, 2),
        )
        with pytest.raises(ValueError, match="single-topology"):
            run_adaptive_grid(spec, max_seeds=4, batch=1)

    def test_single_strategy_spec_is_rejected(self):
        spec = GridSpec(
            cores=(4,), intensities=(30,), strategies=("FC",), seeds=(1, 2, 3)
        )
        with pytest.raises(ValueError, match="at least two strategies"):
            run_adaptive_grid(spec, max_seeds=4, batch=1)
