"""The cluster dimension as a first-class grid citizen.

Acceptance for the cluster elevation: a ``nodes × balancer`` sweep runs
through :func:`run_grid` with ``jobs=2``, hits the cache on a re-run,
matches the serial run bit-for-bit, and cluster parameters provably
change the cache fingerprint.
"""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.fig6_multinode import fig6_config, run_fig6
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import (
    EngineStats,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    result_from_payload,
    result_to_payload,
    run_configs,
)
from repro.experiments.runner import run_experiment, run_multi_node_experiment


def cluster_spec() -> GridSpec:
    """A small nodes × balancer sweep, cheap enough for jobs=2 + cache."""
    return GridSpec(
        cores=(4,),
        intensities=(10,),
        strategies=("FC",),
        seeds=(1,),
        nodes=(1, 3),
        balancers=("least-loaded", "power-of-d"),
    )


def assert_results_identical(a, b) -> None:
    assert a.config == b.config
    assert a.records == b.records
    assert a.node_stats == b.node_stats
    assert a.balancer_stats == b.balancer_stats


class TestClusterSweepAcceptance:
    def test_parallel_matches_serial_and_caches(self, tmp_path):
        spec = cluster_spec()
        serial = run_grid(spec, jobs=1)
        pooled = run_grid(spec, jobs=2, cache_dir=tmp_path / "cache")

        assert serial.cells.keys() == pooled.cells.keys()
        assert len(serial.cells) == 4  # 2 node counts x 2 balancers
        for key in serial.cells:
            for s, p in zip(serial.cells[key], pooled.cells[key]):
                assert_results_identical(s, p)

        # Cached re-run: every cell comes back from disk, still identical.
        again = run_grid(spec, jobs=2, cache_dir=tmp_path / "cache")
        assert again.stats.cached == again.stats.total == 4
        for key in serial.cells:
            for s, c in zip(serial.cells[key], again.cells[key]):
                assert_results_identical(s, c)

    def test_sweep_keys_carry_topology(self):
        spec = cluster_spec()
        assert spec.has_cluster_sweep
        keys = spec.cell_keys()
        assert (4, 10, "FC", 3, "power-of-d") in keys
        assert len(keys) == 4

    def test_single_topology_keeps_classic_keys(self):
        spec = GridSpec(cores=(4,), intensities=(10,), strategies=("FIFO",), seeds=(1,))
        assert not spec.has_cluster_sweep
        assert spec.cell_keys() == [(4, 10, "FIFO")]

    def test_multi_node_cells_use_every_node(self):
        spec = cluster_spec()
        grid = run_grid(spec)
        results = grid.results(4, 10, "FC", nodes=3, balancer="least-loaded")
        assert len(results[0].node_stats) == 3
        assert len({r.invoker for r in results[0].records}) == 3
        assert results[0].balancer_stats["picks"] == len(results[0].records)


class TestFingerprintDivergence:
    """Cluster parameters are part of the experiment's identity: any
    change must produce a different cache fingerprint."""

    BASE = dict(cores=4, intensity=10, policy="FC", seed=1)

    def fp(self, **cluster_kwargs) -> str:
        cluster = ClusterSpec(**cluster_kwargs) if cluster_kwargs else None
        config = (
            ExperimentConfig(**self.BASE, cluster=cluster)
            if cluster is not None
            else ExperimentConfig(**self.BASE)
        )
        return config_fingerprint(config)

    def test_node_count_changes_fingerprint(self):
        assert self.fp() != self.fp(nodes=2)
        assert self.fp(nodes=2) != self.fp(nodes=3)

    def test_balancer_changes_fingerprint(self):
        assert self.fp(nodes=2) != self.fp(nodes=2, balancer="power-of-d")

    def test_balancer_params_change_fingerprint(self):
        assert self.fp(nodes=2, balancer="power-of-d") != self.fp(
            nodes=2, balancer="power-of-d", balancer_params={"d": 3}
        )

    def test_node_overrides_change_fingerprint(self):
        assert self.fp(nodes=2) != self.fp(
            nodes=2, node_overrides=({"cores": 2}, {"cores": 8})
        )

    def test_autoscaler_changes_fingerprint(self):
        assert self.fp(nodes=2) != self.fp(nodes=2, autoscaler=())
        assert self.fp(nodes=2, autoscaler=()) != self.fp(
            nodes=2, autoscaler={"max_nodes": 8}
        )

    def test_default_cluster_fingerprint_matches_plain_config(self):
        # Spelling the default explicitly is the same experiment.
        assert self.fp() == self.fp(nodes=1, balancer="least-loaded")


class TestConfigAndResultSerialization:
    def test_cluster_config_round_trips(self):
        config = ExperimentConfig(
            cores=4,
            intensity=10,
            policy="FC",
            cluster=ClusterSpec(
                nodes=2,
                balancer="locality",
                balancer_params={"capacity_factor": 1.5},
                autoscaler={"max_nodes": 3},
            ),
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_result_payload_keeps_balancer_stats(self):
        config = ExperimentConfig(
            cores=4, intensity=10, policy="FC", cluster=ClusterSpec(nodes=2)
        )
        result = run_experiment(config)
        assert result.balancer_stats is not None
        restored = result_from_payload(result_to_payload(result))
        assert_results_identical(result, restored)

    def test_mapping_cluster_accepted(self):
        config = ExperimentConfig(cores=4, intensity=10, cluster={"nodes": 2})
        assert config.cluster == ClusterSpec(nodes=2)

    def test_bad_cluster_type_rejected(self):
        with pytest.raises(ValueError, match="ClusterSpec"):
            ExperimentConfig(cores=4, intensity=10, cluster=3)


class TestClusterRunBehaviour:
    def test_heterogeneous_fleet_materialises_per_node_configs(self):
        config = ExperimentConfig(
            cores=4,
            intensity=10,
            policy="FC",
            cluster=ClusterSpec(nodes=2, node_overrides=({"cores": 2}, {"cores": 8})),
        )
        result = run_experiment(config)
        assert len(result.node_stats) == 2
        assert len(result.records) == 44

    def test_every_balancer_flavour_runs_deterministically(self):
        for balancer in ("round-robin", "least-loaded", "hash-overflow",
                         "power-of-d", "locality"):
            config = ExperimentConfig(
                cores=4,
                intensity=10,
                policy="FC",
                cluster=ClusterSpec(nodes=3, balancer=balancer),
            )
            a = run_experiment(config)
            b = run_experiment(config)
            assert a.records == b.records, balancer
            assert a.balancer_stats == b.balancer_stats, balancer

    def test_autoscaled_run_grows_fleet_and_reports_scale_events(self):
        config = ExperimentConfig(
            cores=4,
            intensity=90,
            policy="baseline",
            cluster=ClusterSpec(
                nodes=1,
                autoscaler={"max_nodes": 3, "provisioning_delay_s": 5.0},
            ),
        )
        result = run_experiment(config)
        assert len(result.node_stats) > 1  # balancer routed to scaled nodes
        assert result.balancer_stats["scale_events"]
        time, size = result.balancer_stats["scale_events"][0]
        assert time >= 5.0 and size >= 2
        # Scaled-out nodes actually served calls (live-list contract end
        # to end: autoscaler append -> balancer pick -> records).
        assert len({r.invoker for r in result.records}) > 1

    def test_autoscaled_run_is_engine_safe(self, tmp_path):
        config = ExperimentConfig(
            cores=4,
            intensity=90,
            policy="baseline",
            cluster=ClusterSpec(
                nodes=1,
                autoscaler={"max_nodes": 3, "provisioning_delay_s": 5.0},
            ),
        )
        serial = run_configs([config], jobs=1)[0]
        stats = EngineStats()
        pooled = run_configs(
            [config], jobs=2, cache_dir=tmp_path / "cache", stats=stats
        )[0]
        assert_results_identical(serial, pooled)
        cached = run_configs([config], jobs=1, cache_dir=tmp_path / "cache")[0]
        assert_results_identical(serial, cached)


class TestArtifactSweepSeams:
    """Artifacts keyed per (cores, intensity, strategy) must refuse a
    multi-topology sweep instead of rendering empty, and paper
    comparisons must not present non-default topologies as comparable."""

    def run_sweep_grid(self):
        return run_grid(
            GridSpec(
                cores=(4,), intensities=(10,),
                strategies=("baseline", "FIFO"), seeds=(1,),
                nodes=(1, 2),
            )
        )

    def test_fig3_fig4_reject_cluster_sweeps(self):
        from repro.experiments.artifacts import fig3_from_grid, fig4_from_grid

        grid = self.run_sweep_grid()
        with pytest.raises(ValueError, match="one cluster topology at a time"):
            fig3_from_grid(grid)
        with pytest.raises(ValueError, match="one cluster topology at a time"):
            fig4_from_grid(grid)

    def test_table2_rejects_cluster_sweeps(self):
        from repro.experiments.artifacts import table2_from_grid

        with pytest.raises(ValueError, match="one cluster topology at a time"):
            table2_from_grid(self.run_sweep_grid())

    def test_table3_comparison_skipped_off_paper_topology(self):
        from repro.experiments.artifacts import table3_from_grid

        note = table3_from_grid(self.run_sweep_grid()).render_comparison()
        assert "skipped" in note

    def test_single_non_default_topology_artifacts_are_tagged(self):
        from repro.experiments.artifacts import fig3_from_grid, table2_from_grid

        grid = run_grid(
            GridSpec(
                cores=(4,), intensities=(10,),
                strategies=("baseline", "FIFO"), seeds=(1,),
                nodes=(2,),
            )
        )
        assert "[cluster: nodes=2" in fig3_from_grid(grid).render()
        assert "[cluster: nodes=2" in table2_from_grid(grid).render()

    def test_explicit_selector_mismatch_raises_on_single_topology_grid(self):
        grid = run_grid(
            GridSpec(
                cores=(4,), intensities=(10,), strategies=("FC",), seeds=(1,),
                nodes=(3,),
            )
        )
        assert len(grid.results(4, 10, "FC", nodes=3)) == 1
        with pytest.raises(KeyError, match="no cell has"):
            grid.results(4, 10, "FC", nodes=1)
        with pytest.raises(KeyError, match="no cell has"):
            grid.summary(4, 10, "FC", balancer="power-of-d")

    def test_balancer_params_filtered_per_swept_flavour(self):
        spec = GridSpec(
            nodes=(2,),
            balancers=("least-loaded", "power-of-d"),
            balancer_params=(("d", 3),),
        )
        by_name = {v.balancer: v for v in spec.cluster_variants()}
        assert dict(by_name["power-of-d"].balancer_params)["d"] == 3
        assert "d" not in dict(by_name["least-loaded"].balancer_params)

    def test_balancer_param_unknown_to_every_flavour_rejected(self):
        spec = GridSpec(
            balancers=("least-loaded", "power-of-d"),
            balancer_params=(("dd", 3),),
        )
        with pytest.raises(ValueError, match="not declared by any"):
            spec.cluster_variants()

    def test_fig6_rejects_unhonored_cluster_overrides(self):
        from repro.experiments.registry import run_registered

        with pytest.raises(ValueError, match="does not honor"):
            run_registered("fig6", nodes=(2,))
        with pytest.raises(ValueError, match="does not honor"):
            run_registered("fig6", autoscale=True)
        with pytest.raises(ValueError, match="does not honor"):
            run_registered(
                "fig6", balancers=("power-of-d",), balancer_params={"d": 3}
            )


class TestFig6Equivalence:
    """fig6 now rides the engine; its cells must match the legacy
    multi-node runner bit-for-bit (same simulated system)."""

    def test_cluster_path_matches_legacy_runner(self):
        legacy = run_multi_node_experiment(
            MultiNodeConfig(
                nodes=3, cores_per_node=4, total_requests=110, policy="FC", seed=2
            )
        )
        elevated = run_experiment(fig6_config(3, 4, 110, "FC", 2))
        assert legacy.records == elevated.records
        assert legacy.node_stats == elevated.node_stats

    def test_single_node_cell_matches_legacy_runner_up_to_node_name(self):
        # nodes=1 takes the classic single-node path, whose invoker is
        # named "FC-node" (the legacy multi-node runner says "FC-node-0");
        # the simulated system — every timestamp and statistic — is
        # identical, only the diagnostic name differs.
        legacy = run_multi_node_experiment(
            MultiNodeConfig(
                nodes=1, cores_per_node=4, total_requests=110, policy="FC", seed=2
            )
        )
        elevated = run_experiment(fig6_config(1, 4, 110, "FC", 2))
        def strip(r):
            return {k: v for k, v in r.__dict__.items() if k != "invoker"}

        assert [strip(r) for r in legacy.records] == [
            strip(r) for r in elevated.records
        ]
        assert [
            {k: v for k, v in stats.items() if k != "name"}
            for stats in legacy.node_stats
        ] == [
            {k: v for k, v in stats.items() if k != "name"}
            for stats in elevated.node_stats
        ]

    def test_fig6_runs_through_the_engine_and_caches(self, tmp_path):
        kwargs = dict(
            cores_per_node=4, node_counts=(2, 1), strategies=("FC",), seeds=(1,)
        )
        serial = run_fig6(**kwargs)
        pooled = run_fig6(**kwargs, jobs=2, cache_dir=tmp_path / "cache")
        assert serial.stats == pooled.stats
        cached = run_fig6(**kwargs, jobs=1, cache_dir=tmp_path / "cache")
        assert serial.stats == cached.stats
