"""Integration tests for the experiment runner."""


from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.runner import (
    run_experiment,
    run_multi_node_experiment,
    run_repetitions,
)
from repro.workload.generator import requests_for_intensity


def quick_cfg(**overrides):
    defaults = dict(cores=4, intensity=10, policy="SEPT", seed=1)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    def test_all_requests_answered(self):
        result = run_experiment(quick_cfg())
        assert len(result.records) == requests_for_intensity(4, 10)

    def test_deterministic_per_seed(self):
        a = run_experiment(quick_cfg(seed=3))
        b = run_experiment(quick_cfg(seed=3))
        assert [r.completed_at for r in a.records] == [
            r.completed_at for r in b.records
        ]

    def test_seeds_change_results(self):
        a = run_experiment(quick_cfg(seed=1))
        b = run_experiment(quick_cfg(seed=2))
        assert [r.completed_at for r in a.records] != [
            r.completed_at for r in b.records
        ]

    def test_baseline_uses_baseline_invoker(self):
        result = run_experiment(quick_cfg(policy="baseline"))
        assert result.node_stats[0]["is_baseline"]

    def test_records_sorted_by_rid(self):
        result = run_experiment(quick_cfg())
        rids = [r.rid for r in result.records]
        assert rids == sorted(rids)

    def test_summary_accessors(self):
        result = run_experiment(quick_cfg())
        stats = result.summary()
        assert stats.n_calls == len(result.records)
        assert result.makespan == stats.max_completion_time
        assert result.cold_starts == stats.cold_starts

    def test_records_for_function(self):
        result = run_experiment(quick_cfg())
        bfs = result.records_for("graph-bfs")
        assert all(r.function_name == "graph-bfs" for r in bfs)
        assert len(bfs) == 4  # 0.1 * cores * intensity

    def test_response_time_nonnegative_and_causal(self):
        result = run_experiment(quick_cfg())
        for record in result.records:
            assert record.response_time > 0
            assert record.completed_at > record.release_time
            assert record.exec_end >= record.exec_start

    def test_skewed_scenario(self):
        result = run_experiment(quick_cfg(scenario="skewed", intensity=20))
        assert len(result.records_for("dna-visualisation")) == 10

    def test_azure_scenario_runs(self):
        result = run_experiment(quick_cfg(scenario="azure"))
        assert len(result.records) == requests_for_intensity(4, 10)

    def test_warmup_false_forces_cold_starts(self):
        result = run_experiment(quick_cfg(warmup=False))
        assert result.cold_starts > 0


class TestRepetitions:
    def test_five_seed_protocol(self):
        results = run_repetitions(quick_cfg(), seeds=(1, 2, 3))
        assert len(results) == 3
        assert {r.config.seed for r in results} == {1, 2, 3}


class TestMultiNode:
    def test_basic_run(self):
        cfg = MultiNodeConfig(
            nodes=2, cores_per_node=4, total_requests=110, policy="FC", seed=1
        )
        result = run_multi_node_experiment(cfg)
        assert len(result.records) == 110
        assert len(result.node_stats) == 2

    def test_all_nodes_used(self):
        cfg = MultiNodeConfig(
            nodes=3, cores_per_node=4, total_requests=330, policy="FC", seed=1
        )
        result = run_multi_node_experiment(cfg)
        assert len({r.invoker for r in result.records}) == 3

    def test_deterministic(self):
        cfg = MultiNodeConfig(
            nodes=2, cores_per_node=4, total_requests=110, policy="baseline", seed=5
        )
        a = run_multi_node_experiment(cfg)
        b = run_multi_node_experiment(cfg)
        assert [r.completed_at for r in a.records] == [
            r.completed_at for r in b.records
        ]
