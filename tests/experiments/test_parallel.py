"""Parallel execution engine: serial-vs-parallel bit-identity, on-disk
cache hit/miss/invalidation, and worker-failure propagation.
"""

import json

import pytest

import repro
import repro.experiments.parallel as parallel
from repro.experiments.config import ExperimentConfig, MultiNodeConfig
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import (
    EngineStats,
    ResultCache,
    WorkerError,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    progress_printer,
    result_from_payload,
    result_to_payload,
    run_configs,
)
from repro.experiments.runner import run_experiment, run_repetitions


def tagging_runner(config):
    """A custom runner whose output is distinguishable from the default's."""
    result = run_experiment(config)
    return type(result)(config=result.config, records=result.records, node_stats=[])


def tiny_spec() -> GridSpec:
    """A 4-run slice cheap enough for cache/progress tests."""
    return GridSpec(cores=(4,), intensities=(10,), strategies=("FIFO", "SEPT"), seeds=(1, 2))


def assert_results_identical(a, b) -> None:
    """Bit-identity: frozen-dataclass records compare field-by-field with
    exact float equality, and node stats are plain dicts."""
    assert a.config == b.config
    assert a.records == b.records
    assert a.node_stats == b.node_stats


class TestBitIdentity:
    def test_parallel_matches_serial_on_quick_grid(self):
        spec = GridSpec.quick()
        serial = run_grid(spec, jobs=1)
        parallel_grid = run_grid(spec, jobs=4)

        assert serial.cells.keys() == parallel_grid.cells.keys()
        for key in serial.cells:
            for s, p in zip(serial.cells[key], parallel_grid.cells[key]):
                assert_results_identical(s, p)
        for cores, intensity, strategy in spec.cells():
            assert serial.summary(cores, intensity, strategy) == parallel_grid.summary(
                cores, intensity, strategy
            )
        assert serial.stats.computed == serial.stats.total
        assert parallel_grid.stats.computed == parallel_grid.stats.total

    def test_run_repetitions_parallel_matches_serial(self):
        cfg = ExperimentConfig(cores=4, intensity=10, policy="SEPT")
        serial = run_repetitions(cfg, seeds=(1, 2, 3))
        parallel_reps = run_repetitions(cfg, seeds=(1, 2, 3), jobs=3)
        assert [r.config.seed for r in parallel_reps] == [1, 2, 3]
        for s, p in zip(serial, parallel_reps):
            assert_results_identical(s, p)


class TestScenarioBitIdentity:
    """Acceptance: every registered scenario runs through the engine with
    serial and parallel results bit-identical, and caches correctly."""

    @pytest.mark.parametrize(
        "scenario", ["azure", "poisson", "diurnal", "zipf-multitenant", "trace", "multi-node"]
    )
    def test_serial_matches_parallel(self, scenario):
        configs = [
            ExperimentConfig(
                cores=4, intensity=10, policy="SEPT", seed=seed, scenario=scenario
            )
            for seed in (1, 2)
        ]
        serial = run_configs(configs, jobs=1)
        pooled = run_configs(configs, jobs=2)
        for s, p in zip(serial, pooled):
            assert_results_identical(s, p)

    def test_replay_serial_matches_parallel_and_caches(self, tmp_path):
        from repro.workload.replay import TraceRow, write_trace_csv

        csv_path = write_trace_csv(
            tmp_path / "trace.csv",
            [TraceRow("a", "f1", 0, 15), TraceRow("b", "f2", 1, 10)],
        )
        configs = [
            ExperimentConfig(
                cores=4, intensity=10, policy="FIFO", seed=seed, scenario="replay",
                scenario_params={"path": str(csv_path), "minute_s": 10.0},
            )
            for seed in (1, 2)
        ]
        serial = run_configs(configs, jobs=1)
        pooled = run_configs(configs, jobs=2, cache_dir=tmp_path / "cache")
        for s, p in zip(serial, pooled):
            assert_results_identical(s, p)
        stats = EngineStats()
        cached = run_configs(
            configs, jobs=1, cache_dir=tmp_path / "cache", stats=stats
        )
        assert stats.cached == 2
        for s, c in zip(serial, cached):
            assert_results_identical(s, c)

    def test_grid_under_non_default_scenario(self, tmp_path):
        spec = GridSpec(
            cores=(4,), intensities=(10,), strategies=("FIFO",), seeds=(1,),
            scenario="poisson", scenario_params=(("zipf_exponent", 1.1),),
        )
        serial = run_grid(spec, jobs=1)
        pooled = run_grid(spec, jobs=2, cache_dir=tmp_path)
        for key in serial.cells:
            for s, p in zip(serial.cells[key], pooled.cells[key]):
                assert_results_identical(s, p)
        config = pooled.cells[(4, 10, "FIFO")][0].config
        assert config.scenario == "poisson"
        # Declared defaults (rate=None) are merged in at construction.
        assert config.scenario_kwargs() == {"rate": None, "zipf_exponent": 1.1}


class TestFingerprint:
    def test_stable_within_version(self):
        cfg = ExperimentConfig(cores=4, intensity=10)
        assert config_fingerprint(cfg) == config_fingerprint(cfg)

    def test_sensitive_to_every_field(self):
        cfg = ExperimentConfig(cores=4, intensity=10)
        variants = [
            cfg.with_(cores=5),
            cfg.with_(intensity=20),
            cfg.with_(policy="SEPT"),
            cfg.with_(seed=2),
            cfg.with_(memory_mb=16384),
            cfg.with_(scenario="skewed"),
            cfg.with_(warmup=False),
            cfg.with_(window_s=30.0),
            cfg.with_(node_overrides=(("busy_limit", 3),)),
        ]
        fingerprints = {config_fingerprint(c) for c in [cfg, *variants]}
        assert len(fingerprints) == len(variants) + 1

    def test_distinguishes_config_types(self):
        single = ExperimentConfig(cores=4, intensity=10)
        multi = MultiNodeConfig(nodes=1, cores_per_node=4, total_requests=10)
        assert config_fingerprint(single) != config_fingerprint(multi)

    def test_changes_with_package_version(self, monkeypatch):
        cfg = ExperimentConfig(cores=4, intensity=10)
        before = config_fingerprint(cfg)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert config_fingerprint(cfg) != before

    def test_sensitive_to_scenario_params_only(self):
        base = ExperimentConfig(cores=4, intensity=10, scenario="azure")
        tweaked = base.with_(scenario_params=(("zipf_exponent", 1.5),))
        assert base.cores == tweaked.cores and base.seed == tweaked.seed
        assert config_fingerprint(base) != config_fingerprint(tweaked)

    def test_scenario_param_value_change_diverges(self):
        a = ExperimentConfig(
            cores=4, intensity=10, scenario="skewed",
            scenario_params={"rare_count": 5},
        )
        b = a.with_(scenario_params=(("rare_count", 6),))
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_config_dict_round_trip(self):
        for cfg in (
            ExperimentConfig(cores=4, intensity=10, node_overrides=(("busy_limit", 3),)),
            ExperimentConfig(
                cores=4, intensity=10, scenario="skewed",
                scenario_params={"rare_function": "sleep", "rare_count": 2},
            ),
            MultiNodeConfig(nodes=2, cores_per_node=4, total_requests=10),
        ):
            assert config_from_dict(json.loads(json.dumps(config_to_dict(cfg)))) == cfg

    def test_tuple_valued_override_round_trips(self):
        cfg = ExperimentConfig(
            cores=4, intensity=10, node_overrides=(("prewarm_sizes", (1, 2, 3)),)
        )
        loaded = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
        assert loaded == cfg
        assert loaded.node_overrides[0][1] == (1, 2, 3)


class TestResultCache:
    def test_store_then_load_is_bit_identical(self, tmp_path):
        cfg = ExperimentConfig(cores=4, intensity=10)
        result = run_experiment(cfg)
        cache = ResultCache(tmp_path)
        cache.store(cfg, result)
        loaded = cache.load(cfg)
        assert loaded is not None
        assert_results_identical(result, loaded)

    def test_payload_json_round_trip_preserves_floats(self):
        cfg = ExperimentConfig(cores=4, intensity=10)
        result = run_experiment(cfg)
        payload = json.loads(json.dumps(result_to_payload(result)))
        assert_results_identical(result, result_from_payload(payload))

    def test_miss_on_unknown_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(ExperimentConfig(cores=4, intensity=10)) is None
        assert cache.misses == 1

    def test_unusable_root_fails_fast(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        with pytest.raises(OSError):
            ResultCache(not_a_dir)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cfg = ExperimentConfig(cores=4, intensity=10)
        cache = ResultCache(tmp_path)
        cache.store(cfg, run_experiment(cfg))
        cache.path_for(cfg).write_text("{not json")
        assert cache.load(cfg) is None

    def test_second_run_recomputes_zero_cells(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        first = run_grid(spec, jobs=1, cache_dir=tmp_path)
        assert first.stats.computed == first.stats.total == 4
        assert first.stats.cached == 0

        # Any attempt to compute on the second pass would blow up here.
        def poisoned(config):
            raise AssertionError(f"cache miss recomputed {config.label()}")

        monkeypatch.setattr(parallel, "run_experiment", poisoned)
        second = run_grid(spec, jobs=1, cache_dir=tmp_path)
        assert second.stats.cached == second.stats.total == 4
        assert second.stats.computed == 0
        for key in first.cells:
            for a, b in zip(first.cells[key], second.cells[key]):
                assert_results_identical(a, b)

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        run_grid(spec, jobs=1, cache_dir=tmp_path)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        again = run_grid(spec, jobs=1, cache_dir=tmp_path)
        assert again.stats.computed == again.stats.total == 4
        assert again.stats.cached == 0

    def test_custom_runner_does_not_share_default_cache(self, tmp_path):
        cfg = ExperimentConfig(cores=4, intensity=10)
        default = run_configs([cfg], jobs=1, cache_dir=tmp_path)[0]
        assert default.node_stats  # the default runner records node stats

        custom_stats = EngineStats()
        custom = run_configs(
            [cfg], jobs=1, cache_dir=tmp_path, runner=tagging_runner, stats=custom_stats
        )[0]
        assert custom_stats.computed == 1  # not served from the default's entry
        assert custom.node_stats == []

        # And the custom runner's entry must not poison the default cache.
        again = run_configs([cfg], jobs=1, cache_dir=tmp_path)[0]
        assert again.node_stats == default.node_stats

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        spec = tiny_spec()
        warmed = run_grid(spec, jobs=2, cache_dir=tmp_path)
        assert warmed.stats.computed == 4
        reread = run_grid(spec, jobs=1, cache_dir=tmp_path)
        assert reread.stats.cached == 4

    def test_fully_cached_parallel_run(self, tmp_path):
        # jobs > 1 with zero misses must not try to build an empty pool.
        spec = tiny_spec()
        first = run_grid(spec, jobs=2, cache_dir=tmp_path)
        again = run_grid(spec, jobs=2, cache_dir=tmp_path)
        assert again.stats.cached == again.stats.total == 4
        for key in first.cells:
            for a, b in zip(first.cells[key], again.cells[key]):
                assert_results_identical(a, b)


class TestProgressAndStats:
    def test_progress_reports_every_run_once(self, tmp_path):
        spec = tiny_spec()
        events = []

        def record(done, total, label, cached):
            events.append((done, total, label, cached))

        run_grid(spec, jobs=1, cache_dir=tmp_path, progress=record)
        assert [e[0] for e in events] == [1, 2, 3, 4]
        assert all(e[1] == 4 and not e[3] for e in events)

        events.clear()
        run_grid(spec, jobs=1, cache_dir=tmp_path, progress=record)
        assert len(events) == 4 and all(cached for _, _, _, cached in events)

    def test_progress_printer_writes_lines(self):
        import io

        stream = io.StringIO()
        report = progress_printer(stream)
        report(1, 8, "FIFO c=10 v=30 seed=1", False)
        report(2, 8, "SEPT c=10 v=30 seed=1", True)
        lines = stream.getvalue().splitlines()
        assert "run" in lines[0] and "FIFO" in lines[0]
        assert "cache" in lines[1] and "SEPT" in lines[1]

    def test_stats_filled_in_place(self):
        stats = EngineStats()
        run_configs([ExperimentConfig(cores=4, intensity=10)], jobs=1, stats=stats)
        assert (stats.total, stats.computed, stats.cached) == (1, 1, 0)


class TestWorkerFailure:
    #: node_config() materialization rejects the bogus override, so the
    #: failure happens inside the worker, not at config construction.
    BAD = ExperimentConfig(cores=4, intensity=10, node_overrides=(("bogus_field", 1),))

    def test_pool_failure_raises_worker_error(self):
        good = ExperimentConfig(cores=4, intensity=10)
        with pytest.raises(WorkerError) as excinfo:
            run_configs([good, self.BAD, good.with_(seed=2)], jobs=2)
        err = excinfo.value
        assert "c=4 v=10" in err.label
        assert "bogus_field" in err.remote_traceback
        assert "TypeError" in str(err)

    def test_serial_failure_raises_original_exception(self):
        with pytest.raises(TypeError):
            run_configs([self.BAD], jobs=1)

    def test_single_pending_run_still_honours_worker_error_contract(self):
        # jobs > 1 promises WorkerError even when only one run is pending
        # (e.g. every other cell was a cache hit).
        with pytest.raises(WorkerError):
            run_configs([self.BAD], jobs=4)

    def test_failed_run_is_not_cached(self, tmp_path):
        good = ExperimentConfig(cores=4, intensity=10)
        with pytest.raises(WorkerError):
            run_configs([self.BAD, good], jobs=2, cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        assert cache.load(self.BAD) is None
