"""Crash-hardened grid engine: killed workers are respawned with backoff,
hung cells are cancelled on the per-cell deadline while the rest of the
sweep completes, and ``verify_cache`` quarantines damaged cache entries.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    CELL_TIMEOUT_ENV,
    EngineStats,
    WorkerError,
    config_fingerprint,
    run_configs,
    verify_cache,
)
from repro.experiments.runner import run_experiment


def tiny_configs(n=3):
    return [
        ExperimentConfig(cores=4, intensity=10, policy="FIFO", seed=seed)
        for seed in range(1, n + 1)
    ]


def crash_once_runner(config):
    """SIGKILLs the seed-1 worker on its first attempt only (sentinel on
    disk), simulating an OOM kill the retry recovers from."""
    sentinel = Path(os.environ["REPRO_TEST_CRASH_SENTINEL"])
    if config.seed == 1 and not sentinel.exists():
        sentinel.write_text("crashed")
        os.kill(os.getpid(), signal.SIGKILL)
    return run_experiment(config)


def crash_always_runner(config):
    """The seed-1 cell dies on every attempt: the retry budget must
    exhaust into a WorkerError, never a hang."""
    if config.seed == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return run_experiment(config)


def sleepy_runner(config):
    """The seed-1 cell hangs far past any reasonable deadline."""
    if config.seed == 1:
        time.sleep(120.0)
    return run_experiment(config)


class TestWorkerCrash:
    def test_killed_worker_is_respawned_and_the_cell_completes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_TEST_CRASH_SENTINEL", str(tmp_path / "sentinel")
        )
        configs = tiny_configs()
        stats = EngineStats()
        results = run_configs(
            configs, jobs=2, runner=crash_once_runner, stats=stats
        )
        assert stats.retries == 1
        assert stats.computed == len(configs)
        assert [r.config.seed for r in results] == [1, 2, 3]
        # The respawned cell is deterministic: bit-identical to inline.
        assert results[0].records == run_experiment(configs[0]).records

    def test_repeated_death_surfaces_as_worker_error_with_exit_code(self):
        stats = EngineStats()
        with pytest.raises(WorkerError) as err:
            run_configs(
                tiny_configs(), jobs=2, runner=crash_always_runner, stats=stats
            )
        assert stats.retries == 1  # one respawn before giving up
        assert "worker process died" in str(err.value)
        assert "exit code" in str(err.value)
        assert tiny_configs()[0].label() in str(err.value)


class TestCellTimeout:
    def test_hung_cell_is_cancelled_and_the_sweep_completes(self, tmp_path):
        configs = tiny_configs()
        cache_dir = tmp_path / "cache"
        stats = EngineStats()
        with pytest.raises(WorkerError) as err:
            run_configs(
                configs,
                jobs=2,
                runner=sleepy_runner,
                cache_dir=cache_dir,
                stats=stats,
                cell_timeout=3.0,
            )
        assert stats.timeouts == 1
        assert configs[0].label() in str(err.value)
        assert "cell timeout" in str(err.value)
        # The other cells finished (and were cached) before the raise.
        assert stats.computed == len(configs) - 1
        cached = list(cache_dir.glob("*/*.json"))
        assert len(cached) == len(configs) - 1

    def test_env_var_supplies_the_default_budget(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
        assert parallel._resolve_cell_timeout(None) == 2.5
        # An explicit value wins over the environment.
        assert parallel._resolve_cell_timeout(1.0) == 1.0

    def test_non_positive_disables(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "0")
        assert parallel._resolve_cell_timeout(None) is None
        assert parallel._resolve_cell_timeout(-5.0) is None
        monkeypatch.delenv(CELL_TIMEOUT_ENV)
        assert parallel._resolve_cell_timeout(None) is None

    def test_unparseable_env_var_is_a_clean_error(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match=CELL_TIMEOUT_ENV):
            parallel._resolve_cell_timeout(None)


class TestVerifyCache:
    def populate(self, cache_dir, n=3):
        configs = tiny_configs(n)
        run_configs(configs, jobs=1, cache_dir=cache_dir)
        return configs

    def entry_paths(self, cache_dir):
        return sorted(Path(cache_dir).glob("*/*.json"))

    def test_healthy_cache_verifies_clean(self, tmp_path):
        self.populate(tmp_path)
        report = verify_cache(tmp_path)
        assert (report.scanned, report.ok, report.bad) == (3, 3, 0)
        assert report.quarantined == []

    def test_truncated_entry_is_quarantined(self, tmp_path):
        configs = self.populate(tmp_path)
        victim = self.entry_paths(tmp_path)[0]
        victim.write_text(victim.read_text()[:25])  # lost power mid-write
        report = verify_cache(tmp_path)
        assert report.corrupt == 1
        assert report.ok == 2
        assert not victim.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == report.quarantined
        # The surviving entries still serve hits.
        cache = parallel.ResultCache(tmp_path)
        hits = [c for c in configs if cache.load(c) is not None]
        assert len(hits) == 2

    def test_fingerprint_mismatch_is_corrupt(self, tmp_path):
        self.populate(tmp_path, n=2)
        a, b = self.entry_paths(tmp_path)
        # A payload copied under the wrong name can never be a valid hit.
        b.write_text(a.read_text())
        report = verify_cache(tmp_path)
        assert report.corrupt == 1

    def test_stale_schema_is_quarantined_separately(self, tmp_path):
        self.populate(tmp_path)
        victim = self.entry_paths(tmp_path)[0]
        payload = json.loads(victim.read_text())
        payload["schema"] = payload["schema"] - 1
        victim.write_text(json.dumps(payload))
        report = verify_cache(tmp_path)
        assert (report.corrupt, report.stale) == (0, 1)
        assert report.bad == 1

    def test_no_quarantine_reports_but_leaves_files(self, tmp_path):
        self.populate(tmp_path)
        victim = self.entry_paths(tmp_path)[0]
        victim.write_text("{")
        report = verify_cache(tmp_path, quarantine=False)
        assert report.corrupt == 1
        assert victim.exists()
        assert report.quarantined == []
        assert not (tmp_path / "quarantine").exists()

    def test_quarantine_dir_is_never_scanned(self, tmp_path):
        self.populate(tmp_path)
        self.entry_paths(tmp_path)[0].write_text("garbage")
        first = verify_cache(tmp_path)
        assert first.corrupt == 1
        second = verify_cache(tmp_path)
        assert (second.scanned, second.corrupt) == (2, 0)

    def test_missing_root_is_an_empty_report(self, tmp_path):
        report = verify_cache(tmp_path / "nope")
        assert (report.scanned, report.bad) == (0, 0)

    def test_verified_entries_match_their_fingerprints(self, tmp_path):
        configs = self.populate(tmp_path)
        stems = {p.stem for p in self.entry_paths(tmp_path)}
        assert stems == {config_fingerprint(c) for c in configs}
