"""Failure injection end to end: serial-vs-parallel bit-identity under
every failure mode, workload-stream independence from the fault streams,
and retained-vs-streaming agreement on the retry/gave-up accounting.
"""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_configs
from repro.experiments.runner import run_experiment
from repro.failures import FailureSpec
from repro.metrics.stats import summarize

#: Every injection mechanism, exercised separately and combined:
#: (FailureSpec fields, node count).
MODES = {
    "container-kill": (
        {"container_kill_rate": 0.25, "max_attempts": 3, "backoff_base_s": 0.1},
        1,
    ),
    "straggler": ({"straggler_prob": 0.3, "straggler_factor": 3.0}, 1),
    "timeout-retry": (
        {"timeout_s": 2.0, "max_attempts": 2, "backoff_base_s": 0.1},
        1,
    ),
    "node-crash": ({"node_crash_rate": 0.02, "node_recovery_s": 5.0}, 3),
    "crash-migrate": (
        {"node_crash_rate": 0.02, "node_recovery_s": 5.0, "crash_inflight": "migrate"},
        3,
    ),
    "combined": (
        {
            "container_kill_rate": 0.15,
            "straggler_prob": 0.2,
            "timeout_s": 3.0,
            "backoff_base_s": 0.1,
        },
        2,
    ),
}


def mode_configs(mode):
    params, nodes = MODES[mode]
    return [
        ExperimentConfig(
            cores=4,
            intensity=10,
            policy=policy,
            seed=seed,
            failures=params,
            cluster=ClusterSpec(nodes=nodes),
        )
        for policy in ("FIFO", "FC")
        for seed in (1, 2)
    ]


class TestBitIdentityUnderFailures:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_serial_matches_jobs2(self, mode):
        configs = mode_configs(mode)
        serial = run_configs(configs, jobs=1)
        parallel = run_configs(configs, jobs=2)
        for s, p in zip(serial, parallel):
            assert s.records == p.records
            assert s.node_stats == p.node_stats
            assert s.summary() == p.summary()

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_mode_actually_perturbs_the_run(self, mode):
        # Guard against a vacuous identity: each regime must change
        # *something* versus the failure-free run of the same configs.
        configs = mode_configs(mode)
        injected = run_configs(configs, jobs=1)
        clean = run_configs(
            [c.with_(failures=FailureSpec.none()) for c in configs], jobs=1
        )
        assert any(i.records != c.records for i, c in zip(injected, clean))


class TestWorkloadIndependence:
    def test_fault_streams_do_not_perturb_the_workload(self):
        # The experiment sees the same calls — same rids, release times,
        # functions, and service demands — with and without failures:
        # fault draws come from dedicated streams, never the workload's.
        base = ExperimentConfig(cores=4, intensity=10, policy="FIFO", seed=3)
        faulty = base.with_(
            failures={
                "container_kill_rate": 0.3,
                "timeout_s": 2.0,
                "max_attempts": 2,
                "backoff_base_s": 0.1,
            }
        )

        def workload_view(result):
            return sorted(
                (r.rid, r.release_time, r.function_name, r.service_time)
                for r in result.records
            )

        clean = run_experiment(base)
        injected = run_experiment(faulty)
        assert workload_view(clean) == workload_view(injected)
        # ...and the injected run did retry or abandon at least one call.
        assert any(r.attempts > 1 or r.failed for r in injected.records)


class TestAccountingEquality:
    REGIME = {
        "container_kill_rate": 0.25,
        "timeout_s": 2.0,
        "max_attempts": 2,
        "backoff_base_s": 0.1,
    }

    def test_retained_matches_streaming_counters(self):
        base = ExperimentConfig(
            cores=4, intensity=10, policy="FC", seed=1, failures=self.REGIME
        )
        retained = run_experiment(base).summary()
        streaming = run_experiment(
            base.with_(retain_records=False)
        ).streaming_summary()
        assert retained.retries == streaming.retries
        assert retained.gave_up == streaming.gave_up
        assert retained.failed_calls == streaming.failed_calls
        assert retained.retries > 0  # the regime actually injected

    def test_counters_are_sums_over_records(self):
        # summarize() is the single source of truth: retries counts extra
        # attempts, gave_up exhausted calls, failed_calls both families.
        result = run_experiment(
            ExperimentConfig(
                cores=4, intensity=10, policy="FIFO", seed=2, failures=self.REGIME
            )
        )
        stats = summarize(result.records)
        assert stats.retries == sum(r.attempts - 1 for r in result.records)
        assert stats.gave_up == sum(1 for r in result.records if r.outcome == "gave-up")
        assert stats.failed_calls == sum(
            (r.attempts - 1) + (1 if r.outcome != "ok" else 0)
            for r in result.records
        )
