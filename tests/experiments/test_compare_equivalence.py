"""Streaming-vs-retained equivalence of the comparison pipeline.

``faas-sched compare`` accepts results from either pipeline mode; this
suite pins how closely the two modes' *statistical conclusions* agree,
the comparison-layer analogue of tests/experiments/
test_streaming_equivalence.py:

* every metric in ``COMPARE_METRICS`` is classified here as exact or
  sketched (completeness-guarded, so a newly added comparison metric
  fails this suite until its equivalence class is declared);
* exact metrics (means, cold starts, makespan) produce identical
  per-seed values in both modes, hence identical U statistics, p-values
  and effect sizes;
* sketched percentile metrics stay within the t-digest's documented
  rank-error bound per seed, and the corrected significance verdicts
  agree between modes on the pinned FC-vs-SEPT workload;
* the CLI verb reports p-values, Cliff's delta and Holm-corrected
  significance in both modes from the same result cache (the paper's
  FC-vs-SEPT comparison at 20 seeds — ISSUE 7's acceptance scenario).
"""

import math

import pytest

from repro.cli import main
from repro.cluster.spec import ClusterSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_configs
from repro.metrics.compare import (
    COMPARE_METRICS,
    compare_results,
    seed_metric_values,
)

#: Metrics carried exactly by the streaming accumulator (ExactSum means,
#: integer counters, max-tracking) vs. estimated by the t-digest sketch.
#: Every COMPARE_METRICS entry must appear in exactly one set (enforced
#: below) — a new comparison metric fails until classified.
EXACT_METRICS = {
    "mean_response_time",
    "mean_stretch",
    "cold_starts",
    "makespan",
    # Failure accounting: integer counters summed exactly in both modes
    # (see docs/FAILURES.md and tests/experiments/test_failure_determinism.py).
    "retries",
    "gave_up",
    "failed_calls",
}
SKETCHED_METRICS = {
    "p50_response_time",
    "p95_response_time",
    "p99_response_time",
    "p99_stretch",
}

SEEDS = tuple(range(1, 21))
CORES, INTENSITY = 4, 20


def test_every_compare_metric_is_classified():
    assert EXACT_METRICS | SKETCHED_METRICS == set(COMPARE_METRICS), (
        "a comparison metric was added without declaring its "
        "streaming-equivalence class (exact or sketched)"
    )
    assert not EXACT_METRICS & SKETCHED_METRICS


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("compare-equivalence") / "cache")


@pytest.fixture(scope="module")
def runs(cache_dir):
    """20 seeds of FC and SEPT in both modes, through the cached engine —
    built exactly like the CLI's ``compare`` verb builds them, so the CLI
    tests below re-hit this cache instead of re-simulating."""

    def configs(policy, retain):
        return [
            ExperimentConfig(
                cores=CORES,
                intensity=INTENSITY,
                policy=policy,
                seed=seed,
                cluster=ClusterSpec(nodes=1, balancer="least-loaded"),
                retain_records=retain,
            )
            for seed in SEEDS
        ]

    return {
        ("FC", True): run_configs(configs("FC", True), cache_dir=cache_dir),
        ("SEPT", True): run_configs(configs("SEPT", True), cache_dir=cache_dir),
        ("FC", False): run_configs(configs("FC", False), cache_dir=cache_dir),
        ("SEPT", False): run_configs(configs("SEPT", False), cache_dir=cache_dir),
    }


@pytest.mark.parametrize("metric", sorted(EXACT_METRICS))
@pytest.mark.parametrize("policy", ("FC", "SEPT"))
def test_exact_metrics_match_per_seed(runs, policy, metric):
    retained = seed_metric_values(runs[(policy, True)], metric)
    streaming = seed_metric_values(runs[(policy, False)], metric)
    for r, s in zip(retained, streaming):
        assert math.isclose(r, s, rel_tol=1e-12, abs_tol=0.0)


@pytest.mark.parametrize("metric", sorted(SKETCHED_METRICS))
@pytest.mark.parametrize("policy", ("FC", "SEPT"))
def test_sketched_metrics_within_rank_bound_per_seed(runs, policy, metric):
    """Each seed's sketched percentile must land within the digest's
    documented rank-error bound of the exact record-derived quantile
    (same check as the streaming-equivalence suite, lifted to the
    comparison metrics)."""
    q = int(metric.split("_")[0][1:]) / 100.0
    attribute = "response_time" if "response" in metric else "stretch"
    for retained, streaming in zip(runs[(policy, True)], runs[(policy, False)]):
        digest = getattr(streaming.accumulator, f"{attribute.split('_')[0]}_digest")
        estimate = digest.percentile(q * 100)
        data = sorted(getattr(r, attribute) for r in retained.records)
        n = len(data)
        below = sum(1 for x in data if x < estimate)
        at_most = sum(1 for x in data if x <= estimate)
        slack = n * digest.rank_error_bound(q) + 1.0
        target = q * n
        assert below <= target + slack and at_most >= target - slack, (
            f"{metric} seed {retained.config.seed}: sketch {estimate} at "
            f"ranks [{below}, {at_most}], target {target:.1f} ± {slack:.2f}"
        )


def test_streaming_comparison_agrees_with_retained(runs):
    retained = compare_results(
        runs[("FC", True)], runs[("SEPT", True)], resamples=500
    )
    streaming = compare_results(
        runs[("FC", False)], runs[("SEPT", False)], resamples=500
    )
    assert retained.mode == "retained"
    assert streaming.mode == "streaming"
    for r, s in zip(retained.comparisons, streaming.comparisons):
        assert r.metric == s.metric
        if r.metric in EXACT_METRICS:
            # Identical per-seed values → identical rank statistics.
            assert s.p_value == r.p_value
            assert s.cliffs_delta == r.cliffs_delta
            assert s.significant == r.significant
        else:
            # Sketched values wobble within the rank bound; conclusions
            # must not: same corrected verdict, nearby effect size.
            assert s.significant == r.significant
            assert abs(s.cliffs_delta - r.cliffs_delta) <= 0.2


def test_mixed_mode_comparison_is_labelled(runs):
    mixed = compare_results(
        runs[("FC", True)], runs[("SEPT", False)], resamples=50
    )
    assert mixed.mode == "mixed"


class TestCompareCli:
    """The acceptance scenario: ``faas-sched compare FC SEPT`` at 20
    seeds over the cached engine, both modes."""

    CLI_ARGS = [
        "compare",
        "FC",
        "SEPT",
        "--cores",
        str(CORES),
        "--intensity",
        str(INTENSITY),
        "--num-seeds",
        str(len(SEEDS)),
        "--resamples",
        "300",
        "--no-progress",
    ]

    @pytest.mark.parametrize("streaming", (False, True))
    def test_reports_all_acceptance_metrics(self, runs, cache_dir, capsys, streaming):
        argv = self.CLI_ARGS + ["--cache-dir", cache_dir]
        if streaming:
            argv.append("--streaming")
        assert main(argv) == 0
        out = capsys.readouterr().out
        # p-values, Cliff's delta, Holm-corrected significance columns.
        for column in ("p(holm)", "δ", "effect", "CI(Δ)", "sig"):
            assert column in out
        for metric in (
            "mean_response_time",
            "p99_response_time",
            "mean_stretch",
            "p99_stretch",
            "cold_starts",
        ):
            assert metric in out
        assert ("streaming mode" if streaming else "retained mode") in out
        assert "n=20 vs 20 seeds" in out

    def test_cli_hits_the_fixture_cache(self, runs, cache_dir, capsys):
        """The CLI builds configs identical to the fixture's, so the run
        above must not have re-simulated anything: a fresh run against
        the same cache completes with every cell cached."""
        from repro.experiments.parallel import ResultCache

        cache = ResultCache(cache_dir)
        config = ExperimentConfig(
            cores=CORES,
            intensity=INTENSITY,
            policy="FC",
            seed=SEEDS[0],
            cluster=ClusterSpec(nodes=1, balancer="least-loaded"),
        )
        assert cache.load(config) is not None
