"""CLI surface of the distributed executor and cache lifecycle verbs."""

import json

import pytest

from repro.cli import _parse_size, build_parser, main
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ResultCache, run_configs
from repro.experiments.queue import enqueue_config, pending_fingerprints


GRID = [
    "grid",
    "--cores", "10",
    "--intensities", "30",
    "--strategies", "FIFO",
    "--seeds", "1",
    "--no-progress",
]


class TestExecutorFlag:
    def test_parser_accepts_executor(self):
        args = build_parser().parse_args(GRID + ["--executor", "local"])
        assert args.executor == "local"

    def test_parser_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(GRID + ["--executor", "slurm"])

    def test_queue_without_cache_dir_is_a_clean_error(self, capsys):
        assert main(GRID + ["--executor", "queue"]) == 2
        err = capsys.readouterr().err
        assert "needs --cache-dir" in err

    def test_grid_prints_engine_summary_with_counters(self, capsys, tmp_path):
        assert main(GRID + ["--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "engine: 1 runs (1 computed, 0 from cache" in out
        assert "executor=local" in out
        assert "retries=0" in out
        assert "timeouts=0" in out
        assert "elapsed=" in out

    def test_grid_via_queue_executor(self, capsys, tmp_path):
        argv = GRID + ["--cache-dir", str(tmp_path), "--executor", "queue"]
        assert main(argv) == 0
        assert "executor=queue" in capsys.readouterr().out
        # Re-run resumes entirely from the shared cache.
        assert main(argv) == 0
        assert "0 computed, 1 from cache" in capsys.readouterr().out

    def test_run_prints_engine_summary_for_engine_run_artifacts(self, capsys):
        assert main(["run", "table3", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "engine:" in out
        assert "executor=local" in out

    def test_run_omits_engine_summary_for_fixed_artifacts(self, capsys):
        assert main(["run", "table1", "--no-progress"]) == 0
        assert "engine:" not in capsys.readouterr().out

    def test_compare_prints_engine_summary(self, capsys):
        assert main([
            "compare", "FIFO", "SEPT",
            "--seeds", "1", "2", "--no-progress",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine: 4 runs" in out


class TestWorkerVerb:
    def test_worker_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_drains_queue_and_reports(self, capsys, tmp_path):
        config = ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=1)
        enqueue_config(tmp_path, config)
        assert main(["worker", "--cache-dir", str(tmp_path), "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "worker: 1 computed, 0 reaped, 0 invalid" in out
        assert pending_fingerprints(tmp_path) == []
        assert ResultCache(tmp_path).load(config) is not None

    def test_worker_on_empty_queue_exits_promptly(self, capsys, tmp_path):
        assert main(["worker", "--cache-dir", str(tmp_path), "--no-progress"]) == 0
        assert "worker: 0 computed" in capsys.readouterr().out

    def test_worker_max_cells(self, capsys, tmp_path):
        for seed in (1, 2, 3):
            enqueue_config(
                tmp_path,
                ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=seed),
            )
        assert main([
            "worker", "--cache-dir", str(tmp_path),
            "--max-cells", "2", "--no-progress",
        ]) == 0
        assert "worker: 2 computed" in capsys.readouterr().out
        assert len(pending_fingerprints(tmp_path)) == 1

    def test_worker_progress_lines_on_stderr(self, capsys, tmp_path):
        enqueue_config(
            tmp_path, ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=1)
        )
        assert main(["worker", "--cache-dir", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "worker: computing" in err


class TestCacheVerbs:
    def _populate(self, root):
        config = ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=1)
        result = run_configs([config])[0]
        ResultCache(root).store(config, result)
        return config

    def test_stats(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cache: 1 entries" in out
        assert "1 current" in out
        assert "sidecars:" in out

    def test_gc_dry_run_then_real(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main([
            "cache", "gc", "--cache-dir", str(tmp_path),
            "--size-budget", "0", "--dry-run",
        ]) == 0
        assert "would evict 1" in capsys.readouterr().out
        assert main([
            "cache", "gc", "--cache-dir", str(tmp_path), "--size-budget", "0",
        ]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "cache: 0 entries" in capsys.readouterr().out

    def test_gc_size_budget_accepts_suffixes(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main([
            "cache", "gc", "--cache-dir", str(tmp_path), "--size-budget", "1GiB",
        ]) == 0
        assert "evicted 0" in capsys.readouterr().out

    def test_merge_then_all_hits(self, capsys, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        config_a = ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=1)
        config_b = ExperimentConfig(cores=10, intensity=30, policy="SEPT", seed=1)
        results = run_configs([config_a, config_b])
        ResultCache(src).store(config_a, results[0])
        ResultCache(dst).store(config_b, results[1])
        assert main(["cache", "merge", str(src), str(dst)]) == 0
        assert "merge: 1 copied" in capsys.readouterr().out
        assert main([
            "grid",
            "--cores", "10", "--intensities", "30",
            "--strategies", "FIFO", "SEPT", "--seeds", "1",
            "--no-progress", "--cache-dir", str(dst),
        ]) == 0
        assert "0 computed, 2 from cache" in capsys.readouterr().out

    def test_merge_conflict_is_a_clean_error(self, capsys, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        config = self._populate(src)
        self._populate(dst)
        path = ResultCache(dst).path_for(config)
        payload = json.loads(path.read_text())
        payload["extra"] = "tampered"
        path.write_text(json.dumps(payload))
        assert main(["cache", "merge", str(src), str(dst)]) == 2
        assert "different bytes" in capsys.readouterr().err

    def test_verify_still_works(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "scanned: 1  ok: 1" in capsys.readouterr().out


class TestSizeParsing:
    def test_plain_bytes(self):
        assert _parse_size("1048576") == 1024**2

    def test_suffixes(self):
        assert _parse_size("1KiB") == 1024
        assert _parse_size("2MiB") == 2 * 1024**2
        assert _parse_size("1gb") == 1024**3
        assert _parse_size("1.5k") == 1536

    def test_garbage_rejected(self):
        with pytest.raises(SystemExit):
            _parse_size("lots")
