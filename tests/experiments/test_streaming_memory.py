"""Memory-bound regression test for the streaming pipeline.

Replays ~million-invocation synthetic traces (the recipe from
``benchmarks/bench_streaming_memory.py``) in streaming mode under
``tracemalloc`` and asserts the Python-allocation peak stays inside a
fixed budget — and, the sharper property, that doubling the trace does
NOT double the peak: streaming memory is bounded by workload
*concurrency*, not by invocation count.

These runs take minutes each, so the whole module is gated behind the
``slow`` marker and the ``REPRO_RUN_SLOW`` environment variable; CI runs
it on a schedule, not per-PR (see .github/workflows/ci.yml).
"""

import importlib.util
import os
from pathlib import Path

import pytest

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_RUN_SLOW"),
        reason="set REPRO_RUN_SLOW=1 to run multi-minute memory tests",
    ),
]

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Two sizes, the second double the first, around the million-invocation
#: scale the streaming pipeline exists for.
SIZES = (500_000, 1_000_000)

#: Python-allocation peak budget for EITHER size.  The measured peak is
#: ~40 MB (dominated by one 60k-request replay minute-bucket plus the
#: in-flight call set); 128 MB leaves ~3x headroom before this fails.
TRACED_BUDGET_MB = 128.0

#: Doubling the invocations must not come close to doubling the peak.
SUBLINEAR_RATIO = 1.5


def _load_bench_module():
    """Import the standalone bench script (benchmarks/ is not a package)."""
    path = REPO_ROOT / "benchmarks" / "bench_streaming_memory.py"
    spec = importlib.util.spec_from_file_location("bench_streaming_memory", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def measurements():
    """One streaming run per size, measured under tracemalloc.

    ``run_case`` already asserts the summary saw every invocation, so a
    silently truncated replay fails here, not in the assertions below.
    ``ru_maxrss`` would be contaminated by the pytest process's own
    lifetime high-water, so only the tracemalloc peak is asserted on.
    """
    bench = _load_bench_module()
    return {
        n: bench.run_case("streaming", n, trace_allocs=True) for n in SIZES
    }


def test_peak_stays_inside_budget(measurements):
    for n, case in measurements.items():
        assert case["tracemalloc_peak_mb"] <= TRACED_BUDGET_MB, (
            f"streaming replay of {n:,} invocations peaked at "
            f"{case['tracemalloc_peak_mb']} MB traced allocations "
            f"(budget {TRACED_BUDGET_MB} MB) — a per-record leak?"
        )


def test_memory_growth_is_sublinear(measurements):
    small, large = (measurements[n]["tracemalloc_peak_mb"] for n in SIZES)
    assert large <= SUBLINEAR_RATIO * small, (
        f"doubling the trace ({SIZES[0]:,} -> {SIZES[1]:,} invocations) "
        f"grew the traced peak {small} MB -> {large} MB; streaming memory "
        f"must be concurrency-bound, not invocation-bound"
    )


def test_streaming_summary_is_complete(measurements):
    for n, case in measurements.items():
        assert case["invocations"] == n
        assert case["cold_starts"] >= len(_load_bench_module().FAST_FUNCS)
        assert case["mean_response_time_s"] > 0
