"""Kernel bit-identity acceptance: golden metric fingerprints.

Every registered scenario (crossed with both node models, plus two heavy
oversubscription stresses) must produce *bit-identical* metrics output —
call records, summaries, node diagnostics — to the goldens captured in
``tests/data/golden_kernel_fingerprints.json``, both serially and through
the parallel execution engine.  The goldens were captured from the
pre-optimization kernel, so this suite is the proof that the incremental
water-filling / ETA-heap / cancellable-calendar rewrite changed *nothing*
about simulated behaviour.  See ``tools/golden_fingerprints.py`` for the
capture protocol and the (narrow, documented) ``cpu_utilization``
tolerance.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from golden_fingerprints import (  # noqa: E402
    GOLDEN_PATH,
    compare_fingerprints,
    compute_fingerprints,
    fingerprint_cases,
    load_golden,
)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        "golden fingerprints missing; capture them with "
        "`python tools/golden_fingerprints.py --write` (only legitimate "
        "when the simulated system intentionally changed)"
    )
    return load_golden()


def test_every_registered_scenario_is_covered(tmp_path, golden):
    from repro.workload.registry import scenario_names

    labels = {label for label, _ in fingerprint_cases(tmp_path)}
    assert set(golden) == labels
    for scenario in scenario_names():
        assert any(label.startswith(f"{scenario}:") for label in labels), scenario


def test_serial_output_matches_golden(tmp_path, golden):
    current = compute_fingerprints(tmp_path, jobs=1)
    problems = compare_fingerprints(golden, current)
    assert not problems, "\n".join(problems)


def test_parallel_output_matches_golden(tmp_path, golden):
    current = compute_fingerprints(tmp_path, jobs=2)
    problems = compare_fingerprints(golden, current)
    assert not problems, "\n".join(problems)
