"""Tests for the per-artifact experiment modules (scaled-down runs)."""

import pytest

from repro.experiments.ablations import (
    ablate_busy_limit,
    ablate_estimator_window,
)
from repro.experiments.fig2_coldstarts import run_fig2
from repro.experiments.fig5_fairness import run_fig5
from repro.experiments.fig6_multinode import REQUESTS_FOR_CORES, run_fig6
from repro.experiments.paper_data import (
    TABLE1_MEDIANS_MS,
    TABLE2_RATIO_RANGES,
    TABLE3,
    TABLE5,
)
from repro.experiments.table1 import run_table1
from repro.workload.functions import sebs_catalog


class TestPaperData:
    def test_table1_covers_catalog(self):
        assert set(TABLE1_MEDIANS_MS) == {s.name for s in sebs_catalog()}

    def test_table2_covers_full_grid(self):
        assert len(TABLE2_RATIO_RANGES) == 15  # 3 cores x 5 intensities
        for lo, hi in TABLE2_RATIO_RANGES.values():
            assert 0 < lo <= hi

    def test_table3_covers_full_grid(self):
        assert len(TABLE3) == 90  # 3 x 5 x 6
        strategies = {key[2] for key in TABLE3}
        assert strategies == {"baseline", "FIFO", "SEPT", "EECT", "RECT", "FC"}

    def test_table3_values_sane(self):
        for key, (r_avg, r_p50, r_p95, s_avg, s_p50, mk) in TABLE3.items():
            assert 0 < r_avg <= mk, key
            assert r_p50 <= r_p95, key
            assert s_p50 <= s_avg * 10, key

    def test_table5_covers_multi_node_grid(self):
        assert len(TABLE5) == 16  # 4 node counts x 2 core sizes x 2 strategies


class TestTable1:
    def test_idle_benchmark_matches_catalog(self):
        result = run_table1(calls_per_function=15)
        for spec in sebs_catalog():
            p5, p50, p95 = result.percentiles[spec.name]
            assert p5 <= p50 <= p95
            # Within 15% + 5ms of the published median.
            assert p50 == pytest.approx(spec.p50, rel=0.15, abs=0.005)
        assert "Table I" in result.render()


class TestFig2:
    def test_sweep_shapes(self):
        result = run_fig2(memories_mb=(8192, 32768), intensities=(30, 120))
        fifo_large = dict(result.series("FIFO", 120))[32768]
        fifo_small = dict(result.series("FIFO", 120))[8192]
        assert fifo_large == 0 < fifo_small
        base_counts = dict(result.series("baseline", 120))
        assert base_counts[32768] > 0.5 * result.totals[120]
        assert "Fig. 2" in result.render()


class TestFig5:
    def test_quick_run_structure(self):
        result = run_fig5(strategies=("SEPT", "FC"), seeds=(1,))
        assert set(result.all_calls) == {"SEPT", "FC"}
        assert result.rare_calls["FC"].n == 10  # exactly 10 dna calls
        assert "Fig. 5" in result.render()


class TestFig6:
    def test_request_count_constants(self):
        # 4 nodes x 11 functions x cores x intensity-30 arithmetic.
        assert REQUESTS_FOR_CORES[10] == 1320
        assert REQUESTS_FOR_CORES[18] == 2376

    def test_quick_run_structure(self):
        result = run_fig6(cores_per_node=4, node_counts=(2, 1), seeds=(1,))
        assert set(result.stats) == {
            (2, "baseline"), (2, "FC"), (1, "baseline"), (1, "FC"),
        }
        for stats in result.stats.values():
            assert stats["p50"] <= stats["p95"] <= stats["max"]
        assert "multi-node" in result.render()

    def test_fewer_nodes_slower(self):
        result = run_fig6(cores_per_node=4, node_counts=(4, 1), seeds=(1,))
        assert result.stat(1, "FC", "avg") > result.stat(4, "FC", "avg")


class TestAblations:
    def test_estimator_window_rows(self):
        result = ablate_estimator_window(windows=(1, 10), cores=4, intensity=30)
        assert [row[0] for row in result.rows] == [1, 10]
        assert all(row[1] > 0 for row in result.rows)
        assert "Ablation" in result.render()

    def test_busy_limit_rows(self):
        result = ablate_busy_limit(factors=(1.0, 2.0), cores=4, intensity=30)
        assert [row[0] for row in result.rows] == [1.0, 2.0]
