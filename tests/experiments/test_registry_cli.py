"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_registered


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig2", "fig3", "fig4", "table2", "table3", "table4",
            "fig5", "fig6", "ablations",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_registered("fig99")

    def test_descriptions_present(self):
        for _, (description, _) in EXPERIMENTS.items():
            assert description


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "SEPT", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SEPT" in out and "R.avg" in out and "cold starts" in out

    def test_simulate_baseline(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10", "--policy", "baseline",
        ]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_parser_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "LIFO"])

    def test_parser_rejects_bad_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])
