"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_registered


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig2", "fig3", "fig4", "table2", "table3", "table4",
            "fig5", "fig6", "ablations",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_registered("fig99")

    def test_descriptions_present(self):
        for _, (description, _) in EXPERIMENTS.items():
            assert description


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "SEPT", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SEPT" in out and "R.avg" in out and "cold starts" in out

    def test_simulate_baseline(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10", "--policy", "baseline",
        ]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_parser_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "LIFO"])

    def test_parser_rejects_bad_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_parser_rejects_bad_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "chaos"])


class TestScenarioCli:
    def test_scenarios_subcommand_lists_all_registered(self, capsys):
        from repro.workload.registry import scenario_names

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert len(scenario_names()) >= 8
        for name in scenario_names():
            assert name in out
        assert "--scenario-param" in out  # parameters are documented

    def test_simulate_with_registered_scenario(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "poisson", "--scenario-param", "zipf_exponent=1.1",
        ])
        assert code == 0
        assert "scenario=poisson" in capsys.readouterr().out

    def test_simulate_replay_scenario(self, capsys, tmp_path):
        from repro.workload.replay import TraceRow, write_trace_csv

        csv_path = write_trace_csv(
            tmp_path / "t.csv", [TraceRow("a", "f", 0, 20)]
        )
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "replay",
            "--scenario-param", f"path={csv_path}",
            "--scenario-param", "minute_s=10",
        ])
        assert code == 0
        assert "scenario=replay" in capsys.readouterr().out

    def test_grid_with_scenario(self, capsys):
        code = main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1",
            "--scenario", "diurnal", "--scenario-param", "amplitude=0.5",
            "--no-progress",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine: 1 runs" in out

    def test_run_artifact_under_scenario_override(self, capsys):
        code = main([
            "run", "table4", "--scenario", "poisson", "--no-progress",
        ])
        assert code == 0
        assert "scenario=poisson" in capsys.readouterr().out

    def test_bad_scenario_param_format_exits(self):
        with pytest.raises(SystemExit):
            main([
                "simulate", "--cores", "4", "--intensity", "10",
                "--scenario", "poisson", "--scenario-param", "zipf_exponent",
            ])

    def test_unknown_scenario_param_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "skewed", "--scenario-param", "rare_cont=5",
        ]) == 2
        err = capsys.readouterr().err
        assert "rare_cont" in err and "rare_count" in err

    def test_scenario_param_without_scenario_on_run_rejected(self, capsys):
        # 'run' defaults --scenario to None; dropping the params silently
        # would run the wrong workload without any hint.
        assert main(["run", "table1", "--scenario-param", "zipf_exponent=1.5"]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_scenario_override_rejected_for_fixed_workload_artifact(self, capsys):
        # fig5 runs its own skewed workload; silently ignoring --scenario
        # would present the wrong experiment as if the override applied.
        assert main(["run", "fig5", "--scenario", "poisson"]) == 2
        assert "fixed workload" in capsys.readouterr().err

    def test_run_registered_rejects_override_for_fixed_workload_artifact(self):
        with pytest.raises(ValueError, match="fixed workload"):
            run_registered("table1", scenario="poisson")

    def test_grid_empty_scenario_clean_error(self, capsys):
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1",
            "--scenario", "poisson", "--scenario-param", "rate=0",
            "--no-progress",
        ]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_grid_empty_scenario_clean_error_with_jobs(self, capsys):
        # With --jobs > 1 the failure arrives as WorkerError; the CLI must
        # still print a clean error, not a traceback.
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1", "2", "--jobs", "2",
            "--scenario", "poisson", "--scenario-param", "rate=0",
            "--no-progress",
        ]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_simulate_dict_valued_param_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "poisson", "--scenario-param", 'rate={"a":1}',
        ]) == 2
        assert "unsupported value type" in capsys.readouterr().err

    def test_run_registered_params_without_scenario_rejected(self):
        with pytest.raises(ValueError, match="without a scenario"):
            run_registered("table3", scenario_params=(("zipf_exponent", 1.5),))

    def test_simulate_missing_replay_file_clean_error(self, capsys, tmp_path):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "replay",
            "--scenario-param", f"path={tmp_path / 'absent.csv'}",
        ]) == 2
        assert "absent.csv" in capsys.readouterr().err

    def test_simulate_empty_scenario_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--scenario", "poisson", "--scenario-param", "rate=0",
        ]) == 2
        err = capsys.readouterr().err
        assert "no requests" in err and "poisson" in err

    def test_python_style_boolean_literals_parse_typed(self):
        from repro.cli import _parse_scenario_params

        assert _parse_scenario_params(["a=False", "b=True", "c=None"]) == (
            ("a", False), ("b", True), ("c", None),
        )
        assert _parse_scenario_params(["a=false", "b=1.5", "c=text"]) == (
            ("a", False), ("b", 1.5), ("c", "text"),
        )

    def test_run_registered_scenario_override(self):
        report = run_registered(
            "table4", quick=True, scenario="poisson",
            scenario_params=(("zipf_exponent", 0.5),),
        )
        assert "scenario=poisson" in report

    def test_run_registered_accepts_mapping_params(self):
        report = run_registered(
            "table4", quick=True, scenario="poisson",
            scenario_params={"zipf_exponent": 0.5},
        )
        assert "scenario=poisson zipf_exponent=0.5" in report


class TestPolicyCli:
    """The policy dimension through the CLI: the `policies` listing plus
    --policy-param on simulate/grid and --policies/--policy-param on run."""

    def test_policies_subcommand_lists_all_registered(self, capsys):
        from repro.scheduling.registry import policy_names

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert len(policy_names()) >= 10
        for name in policy_names():
            assert name in out
        assert "--policy-param" in out  # parameters are documented
        assert "starvation-free" in out

    def test_simulate_with_parameterized_policy(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "SEPT-EMA", "--policy-param", "smoothing=0.4",
        ])
        assert code == 0
        assert "SEPT-EMA" in capsys.readouterr().out

    def test_simulate_with_extension_policy(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "ORACLE-SPT",
        ])
        assert code == 0
        assert "ORACLE-SPT" in capsys.readouterr().out

    def test_simulate_unknown_policy_param_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "ETAS", "--policy-param", "alhpa=0.5",
        ]) == 2
        err = capsys.readouterr().err
        assert "alhpa" in err and "alpha" in err

    def test_simulate_non_numeric_policy_param_clean_error(self, capsys):
        # 'high' survives the JSON fallback as a string; the registry's
        # validator rejects it with a clean ValueError -> exit 2.
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "ETAS", "--policy-param", "alpha=high",
        ]) == 2
        assert "must be a number" in capsys.readouterr().err

    def test_grid_non_numeric_policy_param_clean_error(self, capsys):
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "ETAS", "--seeds", "1",
            "--policy-param", "alpha=high", "--no-progress",
        ]) == 2
        assert "must be a number" in capsys.readouterr().err

    def test_simulate_inert_param_combination_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "SEPT-EMA",
            "--policy-param", "window=3", "--policy-param", "smoothing=0.4",
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_simulate_baseline_with_policy_param_clean_error(self, capsys):
        assert main([
            "simulate", "--cores", "4", "--intensity", "10",
            "--policy", "baseline", "--policy-param", "alpha=0.5",
        ]) == 2
        assert "no policy parameters" in capsys.readouterr().err

    def test_parser_rejects_unregistered_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "SJF"])

    def test_grid_with_parameterized_strategy(self, capsys):
        code = main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "SEPT", "SEPT-EMA", "--seeds", "1",
            "--policy-param", "window=3", "--no-progress",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SEPT-EMA" in out and "engine: 2 runs" in out

    def test_grid_unknown_policy_param_clean_error(self, capsys):
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1",
            "--policy-param", "window=3", "--no-progress",
        ]) == 2
        assert "not declared by any swept strategy" in capsys.readouterr().err

    def test_run_with_policy_override(self, capsys):
        assert main([
            "run", "table4", "--policies", "FC", "FC-HYBRID",
            "--policy-param", "deadline_weight=0.8", "--no-progress",
        ]) == 0
        assert "FC-HYBRID" in capsys.readouterr().out

    def test_run_policy_override_rejected_for_fixed_artifact(self, capsys):
        assert main(["run", "table1", "--policies", "SEPT"]) == 2
        assert "fixed strategy" in capsys.readouterr().err


class TestClusterCli:
    """The cluster dimension through the CLI: --nodes / --balancer /
    --balancer-param / --autoscale on simulate, grid, and run."""

    def test_simulate_multi_node_prints_breakdown(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "10", "--policy", "FC",
            "--nodes", "3", "--balancer", "power-of-d",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes=3" in out and "balancer=power-of-d" in out
        assert "Cluster breakdown" in out
        assert "FC-node-2" in out

    def test_simulate_single_node_keeps_classic_output(self, capsys):
        assert main(["simulate", "--cores", "4", "--intensity", "10"]) == 0
        out = capsys.readouterr().out
        assert "cold starts" in out and "Cluster breakdown" not in out

    def test_grid_sweeps_nodes_and_balancers(self, capsys, tmp_path):
        args = [
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FC", "--seeds", "1", "--jobs", "2",
            "--nodes", "1", "3", "--balancer", "least-loaded", "power-of-d",
            "--cache-dir", str(tmp_path / "cache"), "--no-progress",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "nodes=3 balancer=power-of-d" in out
        assert "engine: 4 runs (4 computed" in out
        # Cached re-run computes nothing.
        assert main(args) == 0
        assert "4 from cache" in capsys.readouterr().out

    def test_grid_single_topology_tagged_in_title(self, capsys):
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1",
            "--nodes", "2", "--no-progress",
        ]) == 0
        assert "[cluster: nodes=2" in capsys.readouterr().out

    def test_grid_bad_balancer_param_clean_error(self, capsys):
        assert main([
            "grid", "--cores", "4", "--intensities", "10",
            "--strategies", "FIFO", "--seeds", "1",
            "--nodes", "2", "--balancer", "power-of-d",
            "--balancer-param", "dd=3", "--no-progress",
        ]) == 2
        assert "not declared by any swept balancer" in capsys.readouterr().err

    def test_parser_rejects_unknown_balancer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--balancer", "magic"])

    def test_simulate_autoscale_flag(self, capsys):
        code = main([
            "simulate", "--cores", "4", "--intensity", "60",
            "--policy", "baseline", "--nodes", "1", "--autoscale",
        ])
        assert code == 0
        assert "Cluster breakdown" in capsys.readouterr().out

    def test_run_fig6_honors_balancer_override(self, capsys):
        assert main([
            "run", "fig6", "--balancer", "least-loaded", "--no-progress",
        ]) == 0
        assert "multi-node response times" in capsys.readouterr().out

    def test_run_cluster_override_rejected_for_fixed_topology(self, capsys):
        assert main(["run", "table1", "--nodes", "3"]) == 2
        assert "fixed topology" in capsys.readouterr().err

    def test_run_registered_cluster_override(self):
        report = run_registered(
            "table4",
            quick=True,
            nodes=(2,),
            balancers=("power-of-d",),
        )
        assert "[cluster: nodes=2 balancer=power-of-d]" in report
