"""Cache lifecycle verbs: stats, gc, and merge."""

import json
import os
import time

import pytest

from repro.experiments.cache_tools import (
    CacheMergeError,
    cache_stats,
    gc_cache,
    merge_caches,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ResultCache, run_configs
from repro.experiments.queue import enqueue_config, try_claim


def _config(seed: int = 1, **overrides) -> ExperimentConfig:
    base = dict(cores=10, intensity=30, policy="FIFO", seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(scope="module")
def results():
    configs = [_config(seed=s) for s in (1, 2, 3)]
    return list(zip(configs, run_configs(configs)))


def _fill(root, results):
    cache = ResultCache(root)
    for config, result in results:
        cache.store(config, result)
    return cache


class TestStats:
    def test_counts_bytes_and_shards(self, tmp_path, results):
        cache = _fill(tmp_path, results)
        report = cache_stats(tmp_path)
        assert report.entries == 3
        assert report.current == 3
        assert report.stale == 0 and report.corrupt == 0
        expected_bytes = sum(
            cache.path_for(config).stat().st_size for config, _ in results
        )
        assert report.total_bytes == expected_bytes
        assert sum(count for count, _ in report.shards.values()) == 3
        assert report.oldest_age is not None and report.oldest_age >= 0

    def test_sees_sidecar_state(self, tmp_path):
        enqueue_config(tmp_path, _config())
        try_claim(tmp_path, "ab" + "0" * 62, owner="w")
        report = cache_stats(tmp_path)
        assert report.queue_depth == 1
        assert report.active_claims == 1
        rendered = report.render()
        assert "1 queued" in rendered and "1 claimed" in rendered

    def test_classifies_stale_and_corrupt(self, tmp_path, results):
        cache = _fill(tmp_path, results)
        config = results[0][0]
        path = cache.path_for(config)
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        other = cache.path_for(results[1][0])
        other.write_text("{truncated")
        report = cache_stats(tmp_path)
        assert report.stale == 1
        assert report.corrupt == 1
        assert report.current == 1

    def test_empty_root(self, tmp_path):
        report = cache_stats(tmp_path / "nonexistent")
        assert report.entries == 0
        assert "0 entries" in report.render()


class TestGc:
    def test_noop_on_healthy_in_budget_cache(self, tmp_path, results):
        _fill(tmp_path, results)
        report = gc_cache(tmp_path)
        assert report.evicted == 0
        assert report.kept == 3

    def test_dead_weight_always_goes_first(self, tmp_path, results):
        cache = _fill(tmp_path, results)
        path = cache.path_for(results[0][0])
        payload = json.loads(path.read_text())
        payload["package_version"] = "0.0.0-ancient"
        path.write_text(json.dumps(payload))
        report = gc_cache(tmp_path)
        assert report.evicted == 1
        assert list(report.reasons.values()) == ["stale"]
        assert not path.exists()

    def test_max_age_evicts_old_entries(self, tmp_path, results):
        cache = _fill(tmp_path, results)
        old = cache.path_for(results[0][0])
        past = time.time() - 3600
        os.utime(old, (past, past))
        report = gc_cache(tmp_path, max_age=60)
        assert report.evicted == 1
        assert report.reasons == {old.stem: "age"}
        assert not old.exists()

    def test_size_budget_evicts_oldest_first(self, tmp_path, results):
        cache = _fill(tmp_path, results)
        paths = [cache.path_for(config) for config, _ in results]
        # Make ages strictly ordered: paths[0] oldest, paths[2] newest.
        now = time.time()
        for rank, path in enumerate(paths):
            stamp = now - (len(paths) - rank) * 100
            os.utime(path, (stamp, stamp))
        total = sum(path.stat().st_size for path in paths)
        budget = total - 1  # must evict exactly the single oldest entry
        report = gc_cache(tmp_path, size_budget=budget)
        assert report.evicted == 1
        assert report.reasons == {paths[0].stem: "budget"}
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()

    def test_zero_budget_clears_the_cache(self, tmp_path, results):
        _fill(tmp_path, results)
        report = gc_cache(tmp_path, size_budget=0)
        assert report.evicted == 3
        assert cache_stats(tmp_path).entries == 0

    def test_dry_run_deletes_nothing(self, tmp_path, results):
        _fill(tmp_path, results)
        report = gc_cache(tmp_path, size_budget=0, dry_run=True)
        assert report.evicted == 3
        assert report.dry_run
        assert "would evict 3" in report.render()
        assert cache_stats(tmp_path).entries == 3

    def test_rejects_negative_limits(self, tmp_path):
        with pytest.raises(ValueError, match="max_age"):
            gc_cache(tmp_path, max_age=-1)
        with pytest.raises(ValueError, match="size_budget"):
            gc_cache(tmp_path, size_budget=-1)


class TestMerge:
    def test_disjoint_union(self, tmp_path, results):
        src, dst = tmp_path / "src", tmp_path / "dst"
        _fill(src, results[:1])
        _fill(dst, results[1:])
        report = merge_caches(src, dst)
        assert report.copied == 1
        assert report.identical == 0
        assert cache_stats(dst).entries == 3
        # The copy is byte-exact.
        src_cache, dst_cache = ResultCache(src), ResultCache(dst)
        config = results[0][0]
        assert src_cache.path_for(config).read_bytes() == (
            dst_cache.path_for(config).read_bytes()
        )

    def test_overlap_must_be_byte_identical(self, tmp_path, results):
        src, dst = tmp_path / "src", tmp_path / "dst"
        _fill(src, results)
        _fill(dst, results)
        report = merge_caches(src, dst)
        assert report.copied == 0
        assert report.identical == 3

    def test_conflicting_entry_aborts_before_copying(self, tmp_path, results):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src_cache = _fill(src, results)
        _fill(dst, results[:1])
        # Corrupt the shared entry in dst: the merge must abort without
        # copying the (valid) src-only entries.
        shared = ResultCache(dst).path_for(results[0][0])
        shared.write_text(shared.read_text() + " ")
        with pytest.raises(CacheMergeError, match="different bytes"):
            merge_caches(src, dst)
        assert cache_stats(dst).entries == 1  # nothing was copied
        assert src_cache.path_for(results[1][0]).exists()

    def test_merge_into_fresh_root(self, tmp_path, results):
        src, dst = tmp_path / "src", tmp_path / "fresh"
        _fill(src, results)
        report = merge_caches(src, dst)
        assert report.copied == 3
        assert cache_stats(dst).entries == 3

    def test_same_root_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="same root"):
            merge_caches(tmp_path, tmp_path)

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_caches(tmp_path / "nope", tmp_path / "dst")
