"""Error paths of record-derived accessors on streaming results.

A streaming result (``retain_records=False``) has no record list; every
accessor that needs one must raise :class:`RecordsNotRetainedError` — a
clear, actionable error naming the accessor and its streaming
alternative — *before* any iteration starts, never a bare
``TypeError: 'NoneType' object is not iterable`` from deep inside an
aggregation.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridResults, GridSpec, run_grid
from repro.experiments.runner import RecordsNotRetainedError, run_experiment


@pytest.fixture(scope="module")
def streaming_result():
    return run_experiment(
        ExperimentConfig(
            cores=4, intensity=20, policy="FC", retain_records=False
        )
    )


class TestAccessorsRaise:
    def test_summary(self, streaming_result):
        with pytest.raises(RecordsNotRetainedError, match="streaming_summary"):
            streaming_result.summary()

    def test_records_for(self, streaming_result):
        with pytest.raises(RecordsNotRetainedError, match="records_for"):
            streaming_result.records_for("dna-visualisation")

    def test_response_times(self, streaming_result):
        with pytest.raises(RecordsNotRetainedError, match="response_times"):
            streaming_result.response_times

    def test_stretches(self, streaming_result):
        with pytest.raises(RecordsNotRetainedError, match="stretches"):
            streaming_result.stretches

    def test_makespan_points_at_the_identical_value(self, streaming_result):
        with pytest.raises(
            RecordsNotRetainedError, match="max_completion_time"
        ):
            streaming_result.makespan

    def test_cluster_summary(self, streaming_result):
        with pytest.raises(RecordsNotRetainedError, match="node_stats"):
            streaming_result.cluster_summary()

    def test_error_is_a_runtime_error_with_guidance(self, streaming_result):
        with pytest.raises(RuntimeError) as excinfo:
            streaming_result.summary()
        message = str(excinfo.value)
        assert "retain_records=False" in message
        assert "retain_records=True" in message  # how to get records back


class TestStreamingAccessorsWork:
    """The accessors that must keep working without records."""

    def test_retained_flag(self, streaming_result):
        assert streaming_result.retained is False
        assert streaming_result.records is None

    def test_streaming_summary(self, streaming_result):
        summary = streaming_result.streaming_summary()
        assert summary.n_calls == 88  # 1.1 * 4 cores * 20
        assert summary.max_completion_time > 0

    def test_cold_starts_is_exact_without_records(self, streaming_result):
        assert streaming_result.cold_starts == streaming_result.accumulator.cold_starts

    def test_node_stats_survive(self, streaming_result):
        (stats,) = streaming_result.node_stats
        assert stats["completed"] == 88


class TestGridViews:
    @pytest.fixture(scope="class")
    def streaming_grid(self):
        spec = GridSpec(
            cores=(4,),
            intensities=(20,),
            strategies=("FC",),
            seeds=(1, 2),
            retain_records=False,
        )
        return run_grid(spec)

    def test_pooled_records_raise(self, streaming_grid):
        key = streaming_grid.cell_keys()[0]
        with pytest.raises(RecordsNotRetainedError, match="pooled_records_for"):
            streaming_grid.pooled_records_for(key)
        with pytest.raises(RecordsNotRetainedError):
            streaming_grid.summary_for(key)

    def test_streaming_views_work(self, streaming_grid):
        key = streaming_grid.cell_keys()[0]
        pooled = streaming_grid.pooled_accumulator_for(key)
        assert pooled.n_calls == 176  # 88 per seed, two seeds
        assert streaming_grid.streaming_summary_for(key).n_calls == 176
        assert streaming_grid.streaming_summary(4, 20, "FC").n_calls == 176

    def test_streaming_views_work_on_retained_grids_too(self):
        grid = run_grid(
            GridSpec(cores=(4,), intensities=(20,), strategies=("FC",), seeds=(1,))
        )
        key = grid.cell_keys()[0]
        # Retained grids answer both spellings, and they agree exactly on
        # the exact fields.
        exact = grid.summary_for(key)
        sketch = grid.streaming_summary_for(key)
        assert sketch.n_calls == exact.n_calls
        assert sketch.cold_starts == exact.cold_starts
        assert sketch.max_completion_time == exact.max_completion_time
