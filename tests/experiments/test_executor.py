"""The executor interface: registry, selection, and the local backend."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import (
    EXECUTOR_ENV,
    LocalExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import EngineStats, run_configs


class TestRegistry:
    def test_both_builtin_executors_are_registered(self):
        assert executor_names() == ["local", "queue"]

    def test_default_is_local(self):
        assert get_executor().name == "local"
        assert isinstance(get_executor(), LocalExecutor)

    def test_queue_resolves_lazily(self):
        assert get_executor("queue").name == "queue"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown executor 'slurm'.*local.*queue"):
            get_executor("slurm")

    def test_env_var_selects_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "queue")
        assert get_executor().name == "queue"
        # An explicit argument beats the environment.
        assert get_executor("local").name == "local"

    def test_env_var_with_bad_name_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "nope")
        with pytest.raises(ValueError, match="unknown executor 'nope'"):
            get_executor()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("local", LocalExecutor)


class TestLocalBackend:
    def test_run_configs_defaults_to_local(self):
        stats = EngineStats()
        configs = [
            ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=s)
            for s in (1, 2)
        ]
        results = run_configs(configs, stats=stats)
        assert len(results) == 2
        assert stats.executor == "local"
        assert stats.computed == 2
        assert stats.elapsed > 0

    def test_explicit_executor_threads_through_run_grid(self, tmp_path):
        spec = GridSpec(
            cores=(10,), intensities=(30,), strategies=("FIFO",), seeds=(1,)
        )
        grid = run_grid(spec, cache_dir=tmp_path, executor="local")
        assert grid.stats.executor == "local"
        assert grid.stats.computed == 1

    def test_shared_stats_accumulate_across_sweeps(self):
        stats = EngineStats()
        spec = GridSpec(
            cores=(10,), intensities=(30,), strategies=("FIFO",), seeds=(1,)
        )
        run_grid(spec, stats=stats)
        run_grid(spec, stats=stats)
        assert stats.total == 2
        assert stats.computed == 2

    def test_local_executor_stores_into_cache(self, tmp_path):
        configs = [ExperimentConfig(cores=10, intensity=30, policy="FIFO", seed=1)]
        run_configs(configs, cache_dir=tmp_path)
        stats = EngineStats()
        run_configs(configs, cache_dir=tmp_path, stats=stats)
        assert stats.cached == 1
        assert stats.computed == 0

    def test_summary_line_format(self):
        stats = EngineStats(total=4, computed=1, cached=3, jobs=2, elapsed=1.25)
        line = stats.summary_line()
        assert "engine: 4 runs (1 computed, 3 from cache" in line
        assert "jobs=2" in line
        assert "executor=local" in line
        assert "retries=0" in line
        assert "timeouts=0" in line
        assert "elapsed=1.2s" in line
