"""The distributed queue executor and its claim/lease protocol.

The concurrency tests race real processes through the protocol's two
critical sections — claiming a free cell and stealing a stale lease —
and assert the exactly-once guarantees the design rests on.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import (
    QUARANTINE_DIR,
    EngineStats,
    ResultCache,
    config_fingerprint,
    result_to_payload,
    run_configs,
    verify_cache,
)
from repro.experiments.queue import (
    CLAIMS_DIR,
    QUEUE_DIR,
    Lease,
    QueueExecutor,
    _lease_path,
    _queue_path,
    _sweep_stale_tombstones,
    enqueue_config,
    lease_is_stale,
    pending_fingerprints,
    read_lease,
    refresh_lease,
    release_lease,
    run_worker,
    steal_lease,
    try_claim,
)

_MP = multiprocessing.get_context("fork")


def _config(seed: int = 1, **overrides) -> ExperimentConfig:
    base = dict(cores=10, intensity=30, policy="FIFO", seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


# ----------------------------------------------------------------------
# End-to-end executor behaviour
# ----------------------------------------------------------------------
class TestQueueExecutor:
    def test_results_bit_identical_to_serial(self, tmp_path):
        configs = [_config(seed=s) for s in (1, 2)]
        serial = run_configs(list(configs))
        stats = EngineStats()
        queued = run_configs(
            list(configs), cache_dir=tmp_path, executor="queue", stats=stats
        )
        assert stats.executor == "queue"
        assert stats.computed == 2
        for a, b in zip(serial, queued):
            assert json.dumps(result_to_payload(a), sort_keys=True) == json.dumps(
                result_to_payload(b), sort_keys=True
            )

    def test_sweep_is_resumable_with_zero_recomputation(self, tmp_path):
        spec = GridSpec(
            cores=(10,), intensities=(30,), strategies=("FIFO", "SEPT"), seeds=(1,)
        )
        first = run_grid(spec, cache_dir=tmp_path, executor="queue")
        assert first.stats.computed == 2
        second = run_grid(spec, cache_dir=tmp_path, executor="queue")
        assert second.stats.computed == 0
        assert second.stats.cached == 2
        # No leftover coordination state either.
        assert pending_fingerprints(tmp_path) == []
        assert list((tmp_path / CLAIMS_DIR).glob("*.lease")) == []

    def test_external_worker_results_count_as_cache_hits(self, tmp_path):
        config = _config()
        fingerprint = enqueue_config(tmp_path, config)
        summary = run_worker(tmp_path)
        assert summary.computed == 1
        assert summary.labels == [config.label()]
        # The submitting sweep now just consumes the done-marker.
        stats = EngineStats()
        run_configs([config], cache_dir=tmp_path, executor="queue", stats=stats)
        assert stats.cached == 1
        assert stats.computed == 0
        assert ResultCache(tmp_path).load(config) is not None
        assert fingerprint == config_fingerprint(config)

    def test_requires_cache_dir(self):
        with pytest.raises(ValueError, match="requires a cache directory"):
            run_configs([_config()], executor="queue")

    def test_rejects_custom_runners(self, tmp_path):
        def custom(config):  # pragma: no cover - rejected before any call
            raise AssertionError

        with pytest.raises(ValueError, match="default .*runners"):
            run_configs(
                [_config()], cache_dir=tmp_path, executor="queue", runner=custom
            )

    def test_rejects_cell_timeout(self, tmp_path):
        # The lease heartbeat keeps a claimed cell alive indefinitely, so
        # a per-cell deadline cannot be enforced — it must be refused, not
        # silently ignored.
        with pytest.raises(ValueError, match="cell-timeout"):
            run_configs(
                [_config()], cache_dir=tmp_path, executor="queue", cell_timeout=5.0
            )

    def test_corrupt_done_marker_is_quarantined_and_recomputed(self, tmp_path):
        config = _config()
        fingerprint = config_fingerprint(config)
        marker = tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text("{truncated", encoding="utf-8")  # torn disk write
        stats = EngineStats()
        results = run_configs(
            [config], cache_dir=tmp_path, executor="queue", stats=stats
        )
        # The sweep must terminate (no livelock on the unparseable marker),
        # recompute the cell, and leave a servable entry behind.
        assert len(results) == 1
        assert stats.computed == 1
        assert ResultCache(tmp_path).load(config) is not None
        quarantined = sorted(p.name for p in (tmp_path / QUARANTINE_DIR).iterdir())
        assert quarantined == [f"{fingerprint[:2]}-{fingerprint}.json"]
        assert verify_cache(tmp_path).bad == 0
        assert pending_fingerprints(tmp_path) == []

    def test_jobs_spawn_local_helpers(self, tmp_path):
        configs = [_config(seed=s) for s in (1, 2, 3, 4)]
        stats = EngineStats()
        results = run_configs(
            configs, cache_dir=tmp_path, executor="queue", jobs=3, stats=stats
        )
        assert len(results) == 4
        assert stats.cached + stats.computed == 4
        report = verify_cache(tmp_path)
        assert report.scanned == 4
        assert report.bad == 0

    def test_helper_count_never_exceeds_pending(self, tmp_path):
        executor = QueueExecutor()
        helpers = executor._spawn_helpers(jobs=8, root=tmp_path, fingerprints=[], ttl=60)
        assert helpers == []


# ----------------------------------------------------------------------
# Queue entries
# ----------------------------------------------------------------------
class TestQueueEntries:
    def test_enqueue_is_idempotent(self, tmp_path):
        config = _config()
        fp1 = enqueue_config(tmp_path, config)
        fp2 = enqueue_config(tmp_path, config)
        assert fp1 == fp2
        assert pending_fingerprints(tmp_path) == [fp1]

    def test_enqueue_skips_done_cells(self, tmp_path):
        config = _config()
        result = run_configs([config])[0]
        ResultCache(tmp_path).store(config, result)
        enqueue_config(tmp_path, config)
        assert pending_fingerprints(tmp_path) == []

    def test_fingerprint_mismatch_is_dropped_as_invalid(self, tmp_path):
        config = _config()
        fingerprint = enqueue_config(tmp_path, config)
        # Rewrite the entry under a wrong filename: a worker must refuse
        # to compute it (it could never produce a valid done-marker).
        path = _queue_path(tmp_path, fingerprint)
        bogus = tmp_path / QUEUE_DIR / ("f" * 64 + ".json")
        os.rename(path, bogus)
        summary = run_worker(tmp_path)
        assert summary.computed == 0
        assert summary.invalid == 1
        assert pending_fingerprints(tmp_path) == []

    def test_corrupt_entry_is_dropped_as_invalid(self, tmp_path):
        config = _config()
        fingerprint = enqueue_config(tmp_path, config)
        _queue_path(tmp_path, fingerprint).write_text("{not json", encoding="utf-8")
        summary = run_worker(tmp_path)
        assert summary.invalid == 1

    def test_done_marker_reaps_queue_entry(self, tmp_path):
        config = _config()
        result = run_configs([config])[0]
        fingerprint = enqueue_config(tmp_path, config)
        # Simulate "another worker finished while this entry waited".
        ResultCache(tmp_path).store(config, result)
        summary = run_worker(tmp_path)
        assert summary.computed == 0
        assert summary.reaped == 1
        assert pending_fingerprints(tmp_path) == []
        assert fingerprint == config_fingerprint(config)


# ----------------------------------------------------------------------
# Claim protocol
# ----------------------------------------------------------------------
def _race_claims(root, fingerprint, racers, out):
    barrier = _MP.Barrier(racers)

    def attempt(slot):
        barrier.wait()
        out[slot] = try_claim(root, fingerprint, owner=f"racer-{slot}")

    processes = [
        _MP.Process(target=attempt, args=(slot,)) for slot in range(racers)
    ]
    for p in processes:
        p.start()
    for p in processes:
        p.join(timeout=30)
    assert all(not p.is_alive() for p in processes)


class TestClaimProtocol:
    FP = "ab" + "0" * 62

    def test_exactly_one_of_n_racing_claims_wins(self, tmp_path):
        racers = 8
        out = _MP.Manager().dict()
        _race_claims(str(tmp_path), self.FP, racers, out)
        wins = [slot for slot in range(racers) if out[slot]]
        assert len(wins) == 1
        lease = read_lease(_lease_path(tmp_path, self.FP))
        assert lease is not None
        assert lease.owner == f"racer-{wins[0]}"

    def test_fresh_lease_blocks_other_claimants(self, tmp_path):
        assert try_claim(tmp_path, self.FP, owner="first")
        assert not try_claim(tmp_path, self.FP, owner="second")
        lease = read_lease(_lease_path(tmp_path, self.FP))
        assert lease.owner == "first"

    def test_expired_ttl_lease_is_stale(self, tmp_path):
        assert try_claim(tmp_path, self.FP, owner="first", ttl=0.05)
        time.sleep(0.15)
        lease = read_lease(_lease_path(tmp_path, self.FP))
        assert lease_is_stale(lease)
        # ... and therefore claimable by someone else.
        assert try_claim(tmp_path, self.FP, owner="second")
        assert read_lease(_lease_path(tmp_path, self.FP)).owner == "second"

    def test_dead_pid_on_same_host_is_stale_before_ttl(self, tmp_path):
        # A forked child that exits immediately gives a real dead pid.
        child = _MP.Process(target=lambda: None)
        child.start()
        child.join()
        path = _lease_path(tmp_path, self.FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        import socket as socket_module

        lease = Lease(
            fingerprint=self.FP,
            owner="dead",
            host=socket_module.gethostname(),
            pid=child.pid,
            acquired_at=now,
            heartbeat_at=now,  # heartbeat is fresh; only the pid is dead
            ttl=3600.0,
        )
        path.write_text(lease.to_json(), encoding="utf-8")
        assert lease_is_stale(read_lease(path))
        assert try_claim(tmp_path, self.FP, owner="stealer")

    def test_stale_lease_stolen_exactly_once(self, tmp_path):
        path = _lease_path(tmp_path, self.FP)
        path.parent.mkdir(parents=True, exist_ok=True)
        lease = Lease(
            fingerprint=self.FP,
            owner="dead",
            host="elsewhere",
            pid=1,
            acquired_at=0.0,
            heartbeat_at=0.0,  # epoch: expired beyond any doubt
            ttl=1.0,
        )
        path.write_text(lease.to_json(), encoding="utf-8")
        racers = 8
        out = _MP.Manager().dict()
        barrier = _MP.Barrier(racers)

        def attempt(slot):
            barrier.wait()
            out[slot] = steal_lease(path)

        processes = [
            _MP.Process(target=attempt, args=(slot,)) for slot in range(racers)
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join(timeout=30)
        wins = [slot for slot in range(racers) if out[slot]]
        assert len(wins) == 1
        assert not path.exists()

    def test_racing_workers_compute_each_cell_once(self, tmp_path):
        configs = [_config(seed=s) for s in (1, 2, 3)]
        for config in configs:
            enqueue_config(tmp_path, config)
        workers = 3
        out = _MP.Manager().dict()
        barrier = _MP.Barrier(workers)

        def drain(slot):
            barrier.wait()
            summary = run_worker(tmp_path, idle_timeout=1.0, poll=0.05)
            out[slot] = summary.computed

        processes = [
            _MP.Process(target=drain, args=(slot,)) for slot in range(workers)
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join(timeout=120)
        assert all(not p.is_alive() for p in processes)
        # Every cell computed exactly once across the fleet...
        assert sum(out.values()) == len(configs)
        # ... and whatever worker computed each cell, the stored entry is
        # byte-identical to what a serial run would have written.
        serial_root = tmp_path / "serial-reference"
        serial_cache = ResultCache(serial_root)
        for config, result in zip(configs, run_configs(list(configs))):
            serial_cache.store(config, result)
        worker_cache = ResultCache(tmp_path)
        for config in configs:
            assert worker_cache.path_for(config).read_bytes() == (
                serial_cache.path_for(config).read_bytes()
            )
        assert verify_cache(tmp_path).bad == 0

    def test_refresh_refuses_missing_or_foreign_lease(self, tmp_path):
        # Missing lease: nothing to heartbeat, and none is resurrected.
        assert not refresh_lease(tmp_path, self.FP, owner="ghost", ttl=60.0)
        assert read_lease(_lease_path(tmp_path, self.FP)) is None
        # Foreign lease: a stalled owner must not clobber the claimant.
        assert try_claim(tmp_path, self.FP, owner="claimant")
        assert not refresh_lease(tmp_path, self.FP, owner="ghost", ttl=60.0)
        assert read_lease(_lease_path(tmp_path, self.FP)).owner == "claimant"
        # The actual owner still heartbeats fine.
        assert refresh_lease(tmp_path, self.FP, owner="claimant", ttl=60.0)

    def test_release_with_owner_spares_foreign_lease(self, tmp_path):
        assert try_claim(tmp_path, self.FP, owner="claimant")
        release_lease(tmp_path, self.FP, owner="ghost")
        assert read_lease(_lease_path(tmp_path, self.FP)).owner == "claimant"
        release_lease(tmp_path, self.FP, owner="claimant")
        assert read_lease(_lease_path(tmp_path, self.FP)) is None

    def test_resumed_heartbeat_stops_after_lease_stolen(self, tmp_path):
        from repro.experiments.queue import _LeaseHeartbeat

        assert try_claim(tmp_path, self.FP, owner="stalled", ttl=0.2)
        heartbeat = _LeaseHeartbeat(tmp_path, self.FP, "stalled", ttl=0.2)
        heartbeat.start()
        try:
            # A stealer re-claims while the stalled owner's heartbeat is
            # still running; the heartbeat must notice and die rather than
            # overwrite the new lease forever.  (A non-atomic read/write
            # pair can clobber one write, so keep re-asserting the theft.)
            path = _lease_path(tmp_path, self.FP)
            now = time.time()
            thief = Lease(
                fingerprint=self.FP,
                owner="thief",
                host="elsewhere",
                pid=1,
                acquired_at=now,
                heartbeat_at=now,
                ttl=3600.0,
            )
            deadline = time.monotonic() + 10.0
            while heartbeat.is_alive() and time.monotonic() < deadline:
                path.write_text(thief.to_json(), encoding="utf-8")
                time.sleep(0.05)
            assert not heartbeat.is_alive()
            assert read_lease(path).owner == "thief"
        finally:
            heartbeat.stop()

    def test_heartbeat_keeps_long_cell_claims_fresh(self, tmp_path):
        from repro.experiments.queue import _LeaseHeartbeat

        assert try_claim(tmp_path, self.FP, owner="slow", ttl=0.4)
        heartbeat = _LeaseHeartbeat(tmp_path, self.FP, "slow", ttl=0.4)
        heartbeat.start()
        try:
            time.sleep(1.2)  # three TTLs: without heartbeats this is stale
            lease = read_lease(_lease_path(tmp_path, self.FP))
            assert lease is not None
            assert not lease_is_stale(lease)
            assert not try_claim(tmp_path, self.FP, owner="thief", ttl=0.4)
        finally:
            heartbeat.stop()

    def test_sigkilled_workers_cell_is_stolen_and_sweep_completes(self, tmp_path):
        config = _config()
        fingerprint = enqueue_config(tmp_path, config)

        def doomed():
            # Claim, then die without heartbeating or releasing —
            # exactly what SIGKILL mid-cell leaves behind.
            try_claim(tmp_path, fingerprint, owner="doomed", ttl=0.3)
            os._exit(0)

        victim = _MP.Process(target=doomed)
        victim.start()
        victim.join(timeout=30)
        lease = read_lease(_lease_path(tmp_path, fingerprint))
        assert lease is not None and lease.owner == "doomed"
        # The sweep steals the orphaned lease and finishes the cell.
        stats = EngineStats()
        results = run_configs(
            [config],
            cache_dir=tmp_path,
            executor="queue",
            stats=stats,
        )
        assert len(results) == 1
        assert stats.computed == 1
        assert ResultCache(tmp_path).load(config) is not None


class TestTombstoneSweep:
    """A stealer that crashes between its rename and unlink leaks a
    ``*.stale-*`` tombstone; worker/sweep startup reclaims old ones."""

    def _tombstone(self, tmp_path, name, age):
        claims = tmp_path / CLAIMS_DIR
        claims.mkdir(parents=True, exist_ok=True)
        path = claims / name
        path.write_text("{}", encoding="utf-8")
        then = time.time() - age
        os.utime(path, (then, then))
        return path

    def test_old_tombstones_swept_young_ones_kept(self, tmp_path):
        old = self._tombstone(
            tmp_path, "ab" + "0" * 62 + ".lease.stale-deadbeef", age=120.0
        )
        # A young tombstone may belong to a steal still in flight.
        fresh = self._tombstone(
            tmp_path, "cd" + "0" * 62 + ".lease.stale-cafe0123", age=0.0
        )
        # Live leases are never touched, whatever their age.
        assert try_claim(tmp_path, "ef" + "0" * 62, owner="live")
        assert _sweep_stale_tombstones(tmp_path, ttl=60.0) == 1
        assert not old.exists()
        assert fresh.exists()
        assert read_lease(_lease_path(tmp_path, "ef" + "0" * 62)) is not None

    def test_run_worker_sweeps_on_startup(self, tmp_path):
        old = self._tombstone(
            tmp_path, "ab" + "0" * 62 + ".lease.stale-deadbeef", age=120.0
        )
        run_worker(tmp_path, lease_ttl=60.0)
        assert not old.exists()
