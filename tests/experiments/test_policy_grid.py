"""Acceptance: the policy dimension through the experiment stack.

* the default (unparameterized) five-policy path is untouched — covered
  by the golden-fingerprint suite — while a policy-param override
  provably diverges the cache fingerprint;
* parameterized policies are bit-identical between the serial engine and
  ``jobs=2``, and round-trip through the on-disk cache;
* ``GridSpec`` sweeps mixed strategy sets with per-strategy parameter
  filtering, and the experiment registry honours ``--policies`` /
  ``--policy-param`` overrides exactly like the scenario and cluster
  overrides it already has.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridSpec, run_grid
from repro.experiments.parallel import (
    EngineStats,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    run_configs,
)
from repro.experiments.registry import run_registered


def assert_results_identical(a, b) -> None:
    assert a.config == b.config
    assert a.records == b.records
    assert a.node_stats == b.node_stats


class TestFingerprints:
    def test_policy_param_override_diverges_fingerprint(self):
        base = ExperimentConfig(cores=4, intensity=10, policy="ETAS")
        tweaked = base.with_(policy_params={"alpha": 0.5})
        assert config_fingerprint(base) != config_fingerprint(tweaked)

    def test_policy_name_diverges_fingerprint(self):
        a = ExperimentConfig(cores=4, intensity=10, policy="SEPT")
        b = a.with_(policy="SEPT-EMA")
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_explicit_default_param_matches_implicit(self):
        # Defaults are folded in at construction: relying on alpha=0.3 and
        # spelling it out are the same experiment, hence the same key.
        implicit = ExperimentConfig(cores=4, intensity=10, policy="ETAS")
        explicit = implicit.with_(policy_params={"alpha": 0.3})
        assert config_fingerprint(implicit) == config_fingerprint(explicit)

    def test_config_round_trips_through_json(self):
        cfg = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA",
            policy_params={"window": 3},
        )
        assert config_from_dict(config_to_dict(cfg)) == cfg


class TestParameterizedBitIdentity:
    @pytest.mark.parametrize(
        "policy,params",
        [
            ("SEPT-EMA", {"window": 3}),
            ("SEPT-EMA", {"smoothing": 0.4}),
            ("FC-HYBRID", {"deadline_weight": 0.8}),
            ("ETAS", {"alpha": 0.7}),
        ],
    )
    def test_serial_matches_jobs2(self, policy, params):
        configs = [
            ExperimentConfig(
                cores=4, intensity=10, policy=policy, policy_params=params, seed=seed
            )
            for seed in (1, 2)
        ]
        serial = run_configs(configs, jobs=1)
        pooled = run_configs(configs, jobs=2)
        for s, p in zip(serial, pooled):
            assert_results_identical(s, p)

    def test_parameterized_policy_caches_and_hits(self, tmp_path):
        configs = [
            ExperimentConfig(
                cores=4, intensity=10, policy="SEPT-EMA",
                policy_params={"window": 3}, seed=seed,
            )
            for seed in (1, 2)
        ]
        first = run_configs(configs, cache_dir=tmp_path)
        stats = EngineStats()
        second = run_configs(configs, cache_dir=tmp_path, stats=stats)
        assert stats.cached == 2 and stats.computed == 0
        for a, b in zip(first, second):
            assert_results_identical(a, b)

    def test_param_change_misses_the_cache(self, tmp_path):
        cfg = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA", policy_params={"window": 3}
        )
        run_configs([cfg], cache_dir=tmp_path)
        stats = EngineStats()
        run_configs(
            [cfg.with_(policy_params={"window": 4})],
            cache_dir=tmp_path,
            stats=stats,
        )
        assert stats.computed == 1 and stats.cached == 0

    def test_param_actually_changes_scheduling(self):
        # FC-HYBRID at w=1 orders like EECT, at w=0 like FC — on a loaded
        # node the resulting record streams must differ.
        def records(weight):
            cfg = ExperimentConfig(
                cores=4, intensity=30, policy="FC-HYBRID",
                policy_params={"deadline_weight": weight},
            )
            return run_configs([cfg])[0].records

        assert records(0.0) != records(1.0)


class TestAutoscaledPolicyParams:
    def test_scaled_out_nodes_rebuild_policy_from_config(self, monkeypatch):
        # The runner hands the autoscaler a factory that rebuilds the
        # policy from the experiment config — name, params, and the
        # node's estimator settings — not the generic default factory,
        # which knows none of them.
        import repro.experiments.runner as runner_mod

        captured = {}
        real = runner_mod.ReactiveAutoscaler

        class Capturing(real):
            def __init__(self, *args, **kwargs):
                captured["factory"] = kwargs.get("factory")
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "ReactiveAutoscaler", Capturing)
        cfg = ExperimentConfig(
            cores=4, intensity=10, policy="SEPT-EMA",
            policy_params={"window": 3},
            node_overrides=(("fc_horizon_s", 30.0),),
            cluster={"nodes": 1, "autoscaler": ()},
        )
        runner_mod.run_experiment(cfg)
        scaled = captured["factory"](7)
        assert scaled.name == "scaled-7"
        assert scaled.policy.estimator.window == 3
        assert scaled.policy.estimator.frequency_horizon == 30.0


class TestGridPolicySweep:
    def test_params_filtered_per_strategy(self):
        spec = GridSpec(
            cores=(4,), intensities=(10,),
            strategies=("baseline", "SEPT", "SEPT-EMA"),
            seeds=(1,),
            policy_params=(("window", 3),),
        )
        by_strategy = spec.policy_params_by_strategy()
        assert by_strategy["baseline"] == ()
        assert by_strategy["SEPT"] == ()
        assert by_strategy["SEPT-EMA"] == (("window", 3),)

    def test_unknown_param_rejected_before_any_run(self):
        spec = GridSpec(
            cores=(4,), intensities=(10,), strategies=("SEPT", "FC"), seeds=(1,),
            policy_params=(("window", 3),),
        )
        with pytest.raises(ValueError, match="not declared by any swept strategy"):
            run_grid(spec)

    def test_unknown_strategy_rejected_before_any_run(self):
        spec = GridSpec(
            cores=(4,), intensities=(10,), strategies=("SJF",), seeds=(1,)
        )
        with pytest.raises(ValueError, match="available policies"):
            run_grid(spec)

    def test_mixed_sweep_runs_and_params_reach_configs(self):
        spec = GridSpec(
            cores=(4,), intensities=(10,),
            strategies=("SEPT", "SEPT-EMA"),
            seeds=(1,),
            policy_params=(("smoothing", 0.4),),
        )
        grid = run_grid(spec)
        sept = grid.results(4, 10, "SEPT")[0]
        ema = grid.results(4, 10, "SEPT-EMA")[0]
        assert sept.config.policy_params == ()
        assert dict(ema.config.policy_params)["smoothing"] == 0.4


class TestRegisteredArtifactPolicyOverride:
    def test_policies_override_reruns_grid_backed_artifact(self):
        report = run_registered(
            "table4", quick=True,
            policies=("FC", "FC-HYBRID"),
            policy_params={"deadline_weight": 0.8},
        )
        assert "FC-HYBRID" in report

    def test_policy_override_rejected_for_fixed_strategy_artifact(self):
        with pytest.raises(ValueError, match="fixed strategy"):
            run_registered("table1", policies=("SEPT",))
        with pytest.raises(ValueError, match="fixed strategy"):
            run_registered("fig5", policy_params={"alpha": 0.5})
