"""Streaming-vs-retained equivalence over every registered scenario.

The streaming pipeline's contract (docs/STREAMING.md):

* the **accumulator state is bit-identical** between a retained run and a
  streaming run of the same config — the fold happens at the same
  (completion-order) moments in both modes;
* the exact fields — ``n_calls``, ``cold_starts``,
  ``max_completion_time`` — equal the record-derived values exactly;
  means agree with numpy's record-derived means to within a rounding ulp
  (the accumulator's ``ExactSum`` mean is the correctly rounded one);
* sketched percentiles sit within the t-digest's documented rank-error
  bound of the exact record-derived quantiles;
* ``jobs=2`` (the multiprocessing engine) returns byte-identical
  accumulators to the serial path, and cross-worker/cross-seed merges are
  merge-order-independent on every exact field.
"""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_configs
from repro.experiments.runner import run_experiment
from repro.metrics.streaming import merge_accumulators
from repro.workload.registry import scenario_names
from repro.workload.replay import TraceRow, write_trace_csv

#: Small but non-trivial workload parameters per registered scenario —
#: every name in the registry must appear here (enforced below), so a
#: newly registered scenario fails this suite until it is covered.
SCENARIO_PARAMS = {
    "uniform": {},
    "skewed": {},
    "azure": {},
    "poisson": {},
    "diurnal": {},
    "trace": {},
    "zipf-multitenant": {},
    "multi-node": {"total_requests": 66},  # divisible by the 11 functions
    "replay": None,  # needs a CSV path; filled by the fixture
}

POLICIES = ("FC", "baseline")

TRACE_ROWS = [
    TraceRow("app1", "f1", 0, 25),
    TraceRow("app1", "f2", 0, 10),
    TraceRow("app2", "f1", 1, 30),
    TraceRow("app2", "f3", 2, 15),
    TraceRow("app1", "f1", 3, 20),
]


@pytest.fixture(scope="module")
def trace_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("streaming") / "trace.csv"
    write_trace_csv(path, TRACE_ROWS)
    return str(path)


def scenario_params(name, trace_csv):
    params = SCENARIO_PARAMS[name]
    if name == "replay":
        return {"path": trace_csv}
    return params


def make_config(scenario, policy, trace_csv, **overrides):
    kwargs = dict(
        cores=4,
        intensity=20,
        policy=policy,
        seed=1,
        scenario=scenario,
        scenario_params=scenario_params(scenario, trace_csv),
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def test_every_registered_scenario_is_covered():
    assert sorted(SCENARIO_PARAMS) == sorted(scenario_names()), (
        "a scenario was (un)registered without updating the streaming "
        "equivalence suite"
    )


def assert_equivalent(retained, streaming):
    """The full contract between one retained and one streaming run."""
    assert retained.retained and not streaming.retained
    # Accumulator state folds identically in both modes.
    assert retained.accumulator.to_dict() == streaming.accumulator.to_dict()

    exact = retained.summary()
    sketch = streaming.streaming_summary()
    assert sketch.n_calls == exact.n_calls == len(retained.records)
    assert sketch.cold_starts == exact.cold_starts
    assert sketch.max_completion_time == retained.makespan
    assert math.isclose(
        sketch.mean_response_time, exact.mean_response_time, rel_tol=1e-12
    )
    assert math.isclose(sketch.mean_stretch, exact.mean_stretch, rel_tol=1e-12)

    # Percentiles: the sketch estimate's rank among the exact values must
    # be within the digest's rank bound (+1 rank of discretization slack).
    n = exact.n_calls
    for metric, digest in (
        ("response_time", streaming.accumulator.response_digest),
        ("stretch", streaming.accumulator.stretch_digest),
    ):
        data = sorted(getattr(r, metric) for r in retained.records)
        for q in (50, 95, 99):
            estimate = digest.percentile(q)
            below = sum(1 for x in data if x < estimate)
            at_most = sum(1 for x in data if x <= estimate)
            slack = n * digest.rank_error_bound(q / 100.0) + 1.0
            target = q / 100.0 * n
            assert below <= target + slack and at_most >= target - slack, (
                f"{metric} P{q}: sketch {estimate} at ranks "
                f"[{below}, {at_most}], target {target:.1f} ± {slack:.2f}"
            )


@pytest.mark.parametrize("scenario", sorted(SCENARIO_PARAMS))
@pytest.mark.parametrize("policy", POLICIES)
def test_streaming_matches_retained(scenario, policy, trace_csv):
    config = make_config(scenario, policy, trace_csv)
    retained = run_experiment(config)
    streaming = run_experiment(config.with_(retain_records=False))
    assert_equivalent(retained, streaming)


def test_streaming_matches_retained_on_a_cluster(trace_csv):
    config = make_config("uniform", "FC", trace_csv, cluster={"nodes": 2})
    retained = run_experiment(config)
    streaming = run_experiment(config.with_(retain_records=False))
    assert_equivalent(retained, streaming)
    assert streaming.balancer_stats == retained.balancer_stats


def test_jobs2_streaming_is_bit_identical_to_serial(trace_csv):
    """The multiprocessing engine must return byte-identical accumulators
    (workers pickle results back across the process boundary)."""
    configs = [
        make_config("uniform", "FC", trace_csv, retain_records=False, seed=seed)
        for seed in (1, 2)
    ] + [
        make_config("skewed", "baseline", trace_csv, retain_records=False, seed=seed)
        for seed in (1, 2)
    ]
    serial = run_configs(configs, jobs=1)
    parallel = run_configs(configs, jobs=2)
    for s, p in zip(serial, parallel):
        assert s.records is None and p.records is None
        assert s.accumulator.to_dict() == p.accumulator.to_dict()
        assert s.streaming_summary() == p.streaming_summary()


def test_cross_seed_merge_is_order_independent(trace_csv):
    """Pooling per-seed accumulators (the grid's streaming aggregate) must
    give bit-identical exact fields in any merge order."""
    results = [
        run_experiment(
            make_config("uniform", "FC", trace_csv, retain_records=False, seed=seed)
        )
        for seed in (1, 2, 3)
    ]
    accs = [r.accumulator for r in results]
    forward = merge_accumulators(accs)
    backward = merge_accumulators(list(reversed(accs)))
    assert forward.n_calls == backward.n_calls == sum(a.n_calls for a in accs)
    assert forward.cold_starts == backward.cold_starts
    assert forward.max_completion_time == backward.max_completion_time
    assert forward.response_sum.value == backward.response_sum.value
    assert forward.stretch_sum.value == backward.stretch_sum.value
    # Digest internals may differ with merge order; estimates must agree
    # within the (pooled) rank bound — here spelled as a loose rel check.
    for q in (50, 95, 99):
        f = forward.response_digest.percentile(q)
        b = backward.response_digest.percentile(q)
        assert math.isclose(f, b, rel_tol=0.1) or abs(f - b) < 0.1


def test_unsorted_replay_trace_fails_only_in_streaming_mode(
    tmp_path, trace_csv
):
    """Streaming replay requires minute-sorted rows (it buckets on the
    fly); the retained path materializes and sorts, so it still works —
    and the streaming error says exactly that."""
    unsorted_path = tmp_path / "unsorted.csv"
    write_trace_csv(
        unsorted_path,
        [
            TraceRow("app1", "f1", 2, 10),
            TraceRow("app1", "f1", 0, 10),
        ],
    )
    config = ExperimentConfig(
        cores=4,
        intensity=20,
        policy="FC",
        scenario="replay",
        scenario_params={"path": str(unsorted_path)},
    )
    retained = run_experiment(config)  # materialized path sorts; fine
    assert retained.streaming_summary().n_calls == 20
    with pytest.raises(ValueError, match="non-decreasing minute"):
        run_experiment(config.with_(retain_records=False))
