"""Tests for grid slicing and the artifact builders."""

import pytest

from repro.experiments.artifacts import (
    fig3_from_grid,
    fig4_from_grid,
    table2_from_grid,
    table3_from_grid,
)
from repro.experiments.grid import GridSpec, run_grid


@pytest.fixture(scope="module")
def tiny_grid():
    spec = GridSpec(
        cores=(4,), intensities=(10,), strategies=("baseline", "FIFO", "SEPT"),
        seeds=(1, 2),
    )
    return run_grid(spec)


class TestGrid:
    def test_cells_complete(self, tiny_grid):
        assert set(tiny_grid.cells) == {
            (4, 10, "baseline"), (4, 10, "FIFO"), (4, 10, "SEPT")
        }
        for results in tiny_grid.cells.values():
            assert len(results) == 2

    def test_pooled_records(self, tiny_grid):
        pooled = tiny_grid.pooled_records(4, 10, "FIFO")
        assert len(pooled) == 2 * 44  # 2 seeds x 1.1*4*10 requests

    def test_summary_over_pool(self, tiny_grid):
        stats = tiny_grid.summary(4, 10, "SEPT")
        assert stats.n_calls == 88

    def test_per_seed_summaries(self, tiny_grid):
        summaries = tiny_grid.per_seed_summaries(4, 10, "FIFO")
        assert len(summaries) == 2
        assert all(s.n_calls == 44 for s in summaries)

    def test_boxes(self, tiny_grid):
        rbox = tiny_grid.response_box(4, 10, "FIFO")
        sbox = tiny_grid.stretch_box(4, 10, "FIFO")
        assert rbox.n == sbox.n == 88
        assert rbox.q1 <= rbox.median <= rbox.q3

    def test_makespans(self, tiny_grid):
        assert len(tiny_grid.makespans(4, 10, "baseline")) == 2

    def test_quick_spec(self):
        spec = GridSpec.quick()
        assert len(list(spec.cells())) == 2 * 4  # 2 intensities x 4 strategies


class TestArtifacts:
    def test_table2_ranges(self, tiny_grid):
        result = table2_from_grid(tiny_grid)
        lo, hi = result.ranges[(4, 10)]
        assert 0 < lo <= hi
        assert "FIFO" in result.render()

    def test_table3_render(self, tiny_grid):
        out = table3_from_grid(tiny_grid).render()
        assert "Table III" in out and "SEPT" in out

    def test_table4_per_seed_render(self, tiny_grid):
        out = table3_from_grid(tiny_grid, per_seed=True).render()
        assert "Table IV" in out and "#2" in out

    def test_fig3_fig4_boxes(self, tiny_grid):
        fig3 = fig3_from_grid(tiny_grid)
        fig4 = fig4_from_grid(tiny_grid)
        assert fig3.metric == "response_time"
        assert fig4.metric == "stretch"
        assert (4, 10, "FIFO") in fig3.boxes
        assert "Fig. 3" in fig3.render()
        assert "Fig. 4" in fig4.render()


class TestScenarioTag:
    """Every grid view must disclose a workload override in its title."""

    def test_uniform_grid_views_untagged(self, tiny_grid):
        for out in (
            table2_from_grid(tiny_grid).render(),
            table3_from_grid(tiny_grid).render(),
            fig3_from_grid(tiny_grid).render(),
        ):
            assert "[scenario=" not in out

    def test_overridden_grid_views_tagged_with_params(self):
        from repro.experiments.grid import GridSpec, run_grid

        spec = GridSpec(
            cores=(4,), intensities=(10,), strategies=("baseline", "FIFO"),
            seeds=(1,), scenario="poisson",
            scenario_params=(("zipf_exponent", 1.1),),
        )
        grid = run_grid(spec)
        for out in (
            table2_from_grid(grid).render(),
            table3_from_grid(grid).render(),
            table3_from_grid(grid, per_seed=True).render(),
            fig3_from_grid(grid).render(),
            fig4_from_grid(grid).render(),
        ):
            assert "[scenario=poisson zipf_exponent=1.1]" in out
