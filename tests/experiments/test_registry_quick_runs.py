"""End-to-end smoke runs of the fast registered artifacts through the CLI
path (`run_registered`).  The heavyweight grids are exercised by the
benchmark suite; here we pin that the cheap artifacts produce coherent
reports.
"""


from repro.experiments.registry import run_registered


class TestQuickRegistryRuns:
    def test_table1_report(self):
        report = run_registered("table1", quick=True)
        assert "Table I" in report
        assert "dna-visualisation" in report

    def test_ablations_report(self):
        report = run_registered("ablations", quick=True)
        assert "Ablation" in report
        assert "window" in report


class TestCliRun(object):
    def test_cli_run_table1(self, capsys):
        from repro.cli import main

        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "measured p5/p50/p95" in out
