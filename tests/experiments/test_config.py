"""Tests for experiment configurations."""

import pytest

from repro.experiments.config import BASELINE, ExperimentConfig, MultiNodeConfig


class TestExperimentConfig:
    def test_is_baseline(self):
        assert ExperimentConfig(cores=10, intensity=30, policy="baseline").is_baseline
        assert ExperimentConfig(cores=10, intensity=30, policy="BASELINE").is_baseline
        assert not ExperimentConfig(cores=10, intensity=30, policy="SEPT").is_baseline

    def test_node_config_carries_overrides(self):
        cfg = ExperimentConfig(
            cores=10, intensity=30, node_overrides=(("kappa", 0.5), ("busy_limit", 15))
        )
        node = cfg.node_config()
        assert node.kappa == 0.5 and node.busy_limit == 15 and node.cores == 10

    def test_with_replaces(self):
        cfg = ExperimentConfig(cores=10, intensity=30, seed=1)
        assert cfg.with_(seed=7).seed == 7
        assert cfg.seed == 1  # original untouched

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cores=10, intensity=30, scenario="chaos")

    def test_label(self):
        cfg = ExperimentConfig(cores=10, intensity=30, policy="FC", seed=3)
        assert "FC" in cfg.label() and "seed=3" in cfg.label()


class TestMultiNodeConfig:
    def test_node_config(self):
        cfg = MultiNodeConfig(nodes=3, cores_per_node=18, total_requests=2376)
        node = cfg.node_config()
        assert node.cores == 18 and node.memory_mb == 40960

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            MultiNodeConfig(nodes=0, cores_per_node=10, total_requests=1320)

    def test_is_baseline(self):
        cfg = MultiNodeConfig(
            nodes=2, cores_per_node=10, total_requests=1320, policy=BASELINE
        )
        assert cfg.is_baseline
