"""Tests for experiment configurations."""

import pytest

from repro.experiments.config import BASELINE, ExperimentConfig, MultiNodeConfig


class TestExperimentConfig:
    def test_is_baseline(self):
        assert ExperimentConfig(cores=10, intensity=30, policy="baseline").is_baseline
        assert ExperimentConfig(cores=10, intensity=30, policy="BASELINE").is_baseline
        assert not ExperimentConfig(cores=10, intensity=30, policy="SEPT").is_baseline

    def test_node_config_carries_overrides(self):
        cfg = ExperimentConfig(
            cores=10, intensity=30, node_overrides=(("kappa", 0.5), ("busy_limit", 15))
        )
        node = cfg.node_config()
        assert node.kappa == 0.5 and node.busy_limit == 15 and node.cores == 10

    def test_with_replaces(self):
        cfg = ExperimentConfig(cores=10, intensity=30, seed=1)
        assert cfg.with_(seed=7).seed == 7
        assert cfg.seed == 1  # original untouched

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cores=10, intensity=30, scenario="chaos")

    def test_unknown_scenario_error_lists_available(self):
        with pytest.raises(ValueError, match="uniform"):
            ExperimentConfig(cores=10, intensity=30, scenario="chaos")

    def test_registered_scenarios_accepted(self):
        for name in ("poisson", "diurnal", "zipf-multitenant", "trace", "multi-node"):
            assert ExperimentConfig(cores=10, intensity=30, scenario=name).scenario == name

    def test_scenario_params_normalised_and_hashable(self):
        from_dict = ExperimentConfig(
            cores=10, intensity=30, scenario="skewed",
            scenario_params={"rare_count": 5, "rare_function": "sleep"},
        )
        from_pairs = ExperimentConfig(
            cores=10, intensity=30, scenario="skewed",
            scenario_params=(("rare_function", "sleep"), ("rare_count", 5)),
        )
        assert from_dict == from_pairs  # one canonical (sorted) form
        assert hash(from_dict) == hash(from_pairs)
        assert from_dict.scenario_kwargs() == {"rare_count": 5, "rare_function": "sleep"}

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(ValueError, match="rare_function"):
            ExperimentConfig(
                cores=10, intensity=30, scenario="skewed",
                scenario_params={"rare_functio": "sleep"},
            )

    def test_missing_required_scenario_param_rejected(self):
        with pytest.raises(ValueError, match="path"):
            ExperimentConfig(cores=10, intensity=30, scenario="replay")

    def test_list_valued_param_frozen_to_tuple(self):
        cfg = ExperimentConfig(
            cores=10, intensity=30, scenario="poisson",
            scenario_params={"rate": [1, 2]},  # freeze() makes it hashable
        )
        assert cfg.scenario_kwargs()["rate"] == (1, 2)

    def test_declared_defaults_baked_into_params(self):
        # Relying on a default and spelling it out are the same experiment,
        # so they must be the same config (and cache fingerprint).
        implicit = ExperimentConfig(cores=10, intensity=30, scenario="azure")
        explicit = ExperimentConfig(
            cores=10, intensity=30, scenario="azure",
            scenario_params={"zipf_exponent": 1.1},
        )
        assert implicit == explicit
        assert implicit.scenario_kwargs() == {"zipf_exponent": 1.1}

    def test_duplicate_param_names_last_wins(self):
        cfg = ExperimentConfig(
            cores=10, intensity=30, scenario="poisson",
            scenario_params=(("rate", 5), ("rate", 2)),  # repeated CLI flag
        )
        assert cfg.scenario_kwargs()["rate"] == 2

    def test_duplicate_params_with_mixed_types_do_not_crash(self):
        cfg = ExperimentConfig(
            cores=10, intensity=30, scenario="poisson",
            scenario_params=(("rate", 5), ("rate", "abc")),
        )
        assert cfg.scenario_kwargs()["rate"] == "abc"

    def test_mapping_valued_param_rejected(self):
        with pytest.raises(ValueError, match="unsupported value type"):
            ExperimentConfig(
                cores=10, intensity=30, scenario="poisson",
                scenario_params={"rate": {"a": 1}},
            )

    def test_unknown_policy_rejected_listing_available(self):
        with pytest.raises(ValueError, match="SEPT"):
            ExperimentConfig(cores=10, intensity=30, policy="SJF")

    def test_policy_case_preserved_but_validated_insensitively(self):
        cfg = ExperimentConfig(cores=10, intensity=30, policy="sept")
        assert cfg.policy == "sept"  # stored spelling untouched (labels, fingerprints)

    def test_registered_extension_policies_accepted(self):
        for name in ("ORACLE-SPT", "ETAS", "RR-FN", "FC-HYBRID", "SEPT-EMA"):
            assert ExperimentConfig(cores=10, intensity=30, policy=name).policy == name

    def test_policy_params_validated_and_defaults_folded(self):
        implicit = ExperimentConfig(cores=10, intensity=30, policy="ETAS")
        explicit = ExperimentConfig(
            cores=10, intensity=30, policy="ETAS", policy_params={"alpha": 0.3}
        )
        assert implicit == explicit
        assert implicit.policy_kwargs() == {"alpha": 0.3}

    def test_unknown_policy_param_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            ExperimentConfig(
                cores=10, intensity=30, policy="ETAS", policy_params={"alhpa": 0.5}
            )

    def test_policy_params_on_parameterless_policy_rejected(self):
        with pytest.raises(ValueError, match="FIFO"):
            ExperimentConfig(
                cores=10, intensity=30, policy="FIFO", policy_params={"alpha": 0.5}
            )

    def test_policy_params_on_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            ExperimentConfig(
                cores=10, intensity=30, policy="baseline",
                policy_params={"alpha": 0.5},
            )

    def test_baseline_empty_mapping_params_stay_canonical(self):
        # A falsy-but-mutable {} must still normalise to the canonical
        # empty tuple, or the frozen config loses hashability.
        cfg = ExperimentConfig(
            cores=10, intensity=30, policy="baseline", policy_params={}
        )
        assert cfg.policy_params == ()
        assert cfg == ExperimentConfig(cores=10, intensity=30, policy="baseline")
        hash(cfg)

    def test_policy_params_normalised_and_hashable(self):
        from_dict = ExperimentConfig(
            cores=10, intensity=30, policy="SEPT-EMA",
            policy_params={"window": 5, "smoothing": 0.0},
        )
        from_pairs = ExperimentConfig(
            cores=10, intensity=30, policy="SEPT-EMA",
            policy_params=(("smoothing", 0.0), ("window", 5)),
        )
        assert from_dict == from_pairs
        assert hash(from_dict) == hash(from_pairs)
        assert from_dict.policy_kwargs() == {"window": 5, "smoothing": 0.0}

    def test_label(self):
        cfg = ExperimentConfig(cores=10, intensity=30, policy="FC", seed=3)
        assert "FC" in cfg.label() and "seed=3" in cfg.label()
        assert "scenario" not in cfg.label()  # uniform is the default

    def test_label_names_non_default_scenario(self):
        cfg = ExperimentConfig(cores=10, intensity=30, scenario="poisson")
        assert "scenario=poisson" in cfg.label()


class TestMultiNodeConfig:
    def test_node_config(self):
        cfg = MultiNodeConfig(nodes=3, cores_per_node=18, total_requests=2376)
        node = cfg.node_config()
        assert node.cores == 18 and node.memory_mb == 40960

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            MultiNodeConfig(nodes=0, cores_per_node=10, total_requests=1320)

    def test_is_baseline(self):
        cfg = MultiNodeConfig(
            nodes=2, cores_per_node=10, total_requests=1320, policy=BASELINE
        )
        assert cfg.is_baseline
