"""tools/bench_compare.py: the legacy min-time differ and the
significance gate, including the zero/missing-baseline edge that used to
produce an infinite percentage."""

import json
import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "tools"))

import bench_compare  # noqa: E402


def bench_json(path: Path, benches: dict) -> Path:
    """Write a minimal pytest-benchmark JSON: ``name -> stats dict``."""
    payload = {
        "benchmarks": [
            {"name": name, "stats": stats} for name, stats in benches.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def stats_for(samples) -> dict:
    return {"min": min(samples), "data": list(samples)}


class TestLegacyDiffer:
    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        old = bench_json(tmp_path / "old.json", {"b": {"min": 1.0}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.5}})
        assert bench_compare.main([str(old), str(new)]) == 1
        assert "REGRESSION (+50.0%)" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path, capsys):
        old = bench_json(tmp_path / "old.json", {"b": {"min": 1.0}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.1}})
        assert bench_compare.main([str(old), str(new)]) == 0
        assert "within threshold" in capsys.readouterr().out

    def test_zero_baseline_is_na_not_infinite_regression(self, tmp_path, capsys):
        """The historical edge: a 0.0 baseline min used to produce
        ``ratio = inf`` and an infinite-percentage REGRESSION verdict."""
        old = bench_json(tmp_path / "old.json", {"b": {"min": 0.0}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.0}})
        assert bench_compare.main([str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "n/a (no usable timing)" in out
        assert "inf" not in out
        assert "REGRESSION" not in out

    def test_missing_min_is_na_not_crash(self, tmp_path, capsys):
        old = bench_json(tmp_path / "old.json", {"b": {}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.0}})
        assert bench_compare.main([str(old), str(new)]) == 0
        assert "n/a" in capsys.readouterr().out

    def test_disjoint_benchmarks_exit_2(self, tmp_path, capsys):
        old = bench_json(tmp_path / "old.json", {"a": {"min": 1.0}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.0}})
        assert bench_compare.main([str(old), str(new)]) == 2
        assert "no shared benchmarks" in capsys.readouterr().out

    def test_not_a_benchmark_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a pytest-benchmark"):
            bench_compare.load_benchmarks(bad)

    def test_compare_rows_sort_regressions_first(self):
        old = {"fast": {"min": 1.0}, "slow": {"min": 1.0}, "na": {"min": 0.0}}
        new = {"fast": {"min": 0.5}, "slow": {"min": 2.0}, "na": {"min": 1.0}}
        rows = bench_compare.compare(old, new, threshold=0.2)
        assert [r[0] for r in rows] == ["slow", "fast", "na"]
        assert rows[0][4] is True  # slow regressed
        assert rows[2][3] is None and rows[2][4] is False  # na: no verdict


class TestSignificanceGate:
    @staticmethod
    def noisy(rng, center, n=20):
        return [center * (1.0 + 0.02 * rng.random()) for _ in range(n)]

    def test_significant_slowdown_fails(self, tmp_path, capsys):
        rng = random.Random(1)
        old = bench_json(
            tmp_path / "old.json", {"b": stats_for(self.noisy(rng, 1.0))}
        )
        new = bench_json(
            tmp_path / "new.json", {"b": stats_for(self.noisy(rng, 1.5))}
        )
        assert bench_compare.main(["--gate", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "significant regression(s)" in out
        assert "p(holm)" in out

    def test_large_min_blip_with_overlapping_samples_passes(self, tmp_path, capsys):
        """The gate's point: one fast outlier round shifts the min >20%
        (legacy mode fails), but the distributions are indistinguishable
        so the gate passes."""
        rng = random.Random(2)
        base = self.noisy(rng, 1.0)
        candidate = self.noisy(rng, 1.0)
        base_with_outlier = [0.7] + base  # old min 0.7 vs new min ~1.0
        old = bench_json(
            tmp_path / "old.json", {"b": stats_for(base_with_outlier)}
        )
        new = bench_json(tmp_path / "new.json", {"b": stats_for(candidate)})
        assert bench_compare.main([str(old), str(new)]) == 1  # legacy: fails
        capsys.readouterr()
        assert bench_compare.main(["--gate", str(old), str(new)]) == 0
        assert "no significant regressions" in capsys.readouterr().out

    def test_significant_speedup_is_reported_not_failed(self, tmp_path, capsys):
        rng = random.Random(3)
        old = bench_json(
            tmp_path / "old.json", {"b": stats_for(self.noisy(rng, 1.5))}
        )
        new = bench_json(
            tmp_path / "new.json", {"b": stats_for(self.noisy(rng, 1.0))}
        )
        assert bench_compare.main(["--gate", str(old), str(new)]) == 0
        assert "significant improvement(s)" in capsys.readouterr().out

    def test_alpha_is_configurable(self, tmp_path):
        """A borderline shift significant at α=0.05 must pass at a
        stricter α."""
        rng = random.Random(4)
        old_samples = [1.0 + 0.05 * rng.random() for _ in range(6)]
        new_samples = [1.03 + 0.05 * rng.random() for _ in range(6)]
        old = bench_json(tmp_path / "old.json", {"b": stats_for(old_samples)})
        new = bench_json(tmp_path / "new.json", {"b": stats_for(new_samples)})
        permissive = bench_compare.main(["--gate", "--alpha", "0.5", str(old), str(new)])
        strict = bench_compare.main(["--gate", "--alpha", "0.001", str(old), str(new)])
        assert strict == 0
        assert permissive in (0, 1)  # depends on draw; strictness must not fail

    def test_benchmarks_without_samples_are_skipped(self, tmp_path, capsys):
        rng = random.Random(5)
        old = bench_json(
            tmp_path / "old.json",
            {"with": stats_for(self.noisy(rng, 1.0)), "without": {"min": 1.0}},
        )
        new = bench_json(
            tmp_path / "new.json",
            {"with": stats_for(self.noisy(rng, 1.0)), "without": {"min": 1.0}},
        )
        assert bench_compare.main(["--gate", str(old), str(new)]) == 0
        assert "without: skipped" in capsys.readouterr().out

    def test_no_samples_anywhere_exit_2(self, tmp_path, capsys):
        old = bench_json(tmp_path / "old.json", {"b": {"min": 1.0}})
        new = bench_json(tmp_path / "new.json", {"b": {"min": 1.0}})
        assert bench_compare.main(["--gate", str(old), str(new)]) == 2
        assert "stats.data" in capsys.readouterr().out

    def test_gate_on_committed_baselines_is_deterministic(self):
        """The committed BENCH pair carries raw samples; the gate must
        produce the same comparison twice (seeded bootstrap)."""
        root = Path(__file__).resolve().parent.parent.parent
        old = bench_compare.load_benchmarks(root / "benchmarks" / "BENCH_kernel_before.json")
        new = bench_compare.load_benchmarks(root / "benchmarks" / "BENCH_kernel_after.json")
        first, skipped_1 = bench_compare.gate_comparison(old, new, resamples=200)
        second, skipped_2 = bench_compare.gate_comparison(old, new, resamples=200)
        assert skipped_1 == skipped_2 == []
        assert first is not None
        assert [c.ci for c in first.comparisons] == [c.ci for c in second.comparisons]
