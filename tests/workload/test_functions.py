"""Tests for the SeBS function catalog."""

import pytest

from repro.workload.functions import (
    NETWORK_OVERHEAD_S,
    FunctionSpec,
    catalog_by_name,
    sebs_catalog,
)


class TestCatalog:
    def test_eleven_functions(self):
        assert len(sebs_catalog()) == 11

    def test_names_unique(self):
        names = [spec.name for spec in sebs_catalog()]
        assert len(set(names)) == 11

    def test_table1_medians(self):
        by_name = catalog_by_name()
        assert by_name["dna-visualisation"].p50 == pytest.approx(8.552)
        assert by_name["graph-bfs"].p50 == pytest.approx(0.012)
        assert by_name["sleep"].p50 == pytest.approx(1.022)

    def test_mean_of_medians_matches_paper(self):
        # Paper Sect. V-B: average response for a uniformly-selected
        # function is ~1.042 s.
        medians = [spec.p50 for spec in sebs_catalog()]
        assert sum(medians) / len(medians) == pytest.approx(1.042, abs=0.002)

    def test_percentile_ordering(self):
        for spec in sebs_catalog():
            assert 0 < spec.p5 <= spec.p50 <= spec.p95

    def test_cpu_fractions_valid_and_diverse(self):
        fractions = [spec.cpu_fraction for spec in sebs_catalog()]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        # Roughly half CPU-intensive, half I/O-leaning (paper Sect. V).
        assert sum(1 for f in fractions if f >= 0.7) >= 5
        assert sum(1 for f in fractions if f < 0.7) >= 3

    def test_sleep_is_pure_wait(self):
        assert catalog_by_name()["sleep"].cpu_fraction <= 0.05

    def test_working_set_fits_32gib_on_10_cores(self):
        # Paper Sect. VI: evictions vanish from 32 GiB on 10 cores.
        total_mb = sum(spec.memory_mb for spec in sebs_catalog()) * 10
        assert total_mb < 32 * 1024

    def test_working_set_exceeds_32gib_on_20_cores(self):
        # ...but the 20-core warm set does not fit, which drives the
        # baseline's eviction churn at 20 cores.
        total_mb = sum(spec.memory_mb for spec in sebs_catalog()) * 20
        assert total_mb > 32 * 1024


class TestFunctionSpec:
    def test_service_distribution_subtracts_network_overhead(self):
        spec = catalog_by_name()["compression"]
        dist = spec.service_distribution
        assert dist.median == pytest.approx(spec.p50 - NETWORK_OVERHEAD_S)

    def test_split_service_partitions(self):
        spec = catalog_by_name()["thumbnailer"]
        cpu, io = spec.split_service(1.0)
        assert cpu + io == pytest.approx(1.0)
        assert cpu == pytest.approx(spec.cpu_fraction)

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("x", 0.1, 0.2, 0.3, cpu_fraction=1.5, memory_mb=128)
        with pytest.raises(ValueError):
            FunctionSpec("x", 0.1, 0.2, 0.3, cpu_fraction=0.5, memory_mb=0)
        with pytest.raises(ValueError):
            FunctionSpec("x", 0.3, 0.2, 0.4, cpu_fraction=0.5, memory_mb=128)

    def test_median_response_time_is_stretch_reference(self):
        for spec in sebs_catalog():
            assert spec.median_response_time == spec.p50
