"""Tests for CSV trace replay."""

import io

import numpy as np
import pytest

from repro.workload.functions import sebs_catalog
from repro.workload.replay import (
    TraceRow,
    iter_trace_rows,
    replay_scenario,
    write_trace_csv,
)

ROWS = [
    TraceRow("app1", "f1", 0, 12),
    TraceRow("app1", "f2", 0, 3),
    TraceRow("app2", "f1", 1, 7),
    TraceRow("app2", "f1", 2, 5),
]


class TestTraceRow:
    def test_key(self):
        assert TraceRow("a", "b", 0, 1).key == "a/b"

    def test_negative_minute_rejected(self):
        with pytest.raises(ValueError):
            TraceRow("a", "b", -1, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TraceRow("a", "b", 0, -1)


class TestIterTraceRows:
    def test_csv_round_trip(self, tmp_path):
        path = write_trace_csv(tmp_path / "trace.csv", ROWS)
        assert list(iter_trace_rows(path)) == ROWS

    def test_header_blank_lines_and_comments_skipped(self):
        text = "app,func,minute,count\n\n# comment\na,b,0,4\n"
        rows = list(iter_trace_rows(io.StringIO(text)))
        assert rows == [TraceRow("a", "b", 0, 4)]

    def test_header_after_leading_comments_skipped(self):
        text = "# generated trace\n\napp,func,minute,count\na,b,0,4\n"
        rows = list(iter_trace_rows(io.StringIO(text)))
        assert rows == [TraceRow("a", "b", 0, 4)]

    def test_header_like_row_after_data_is_an_error(self):
        # Only a leading header is skipped; mid-file it is a malformed row.
        text = "a,b,0,4\napp,func,minute,count\n"
        with pytest.raises(ValueError, match="line 2"):
            list(iter_trace_rows(io.StringIO(text)))

    def test_headerless_file_accepted(self):
        rows = list(iter_trace_rows(io.StringIO("a,b,0,4\nc,d,1,2\n")))
        assert len(rows) == 2

    def test_malformed_row_names_line(self):
        with pytest.raises(ValueError, match="line 2"):
            list(iter_trace_rows(io.StringIO("a,b,0,4\na,b,oops,4\n")))

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            list(iter_trace_rows(io.StringIO("a,b,0\n")))

    def test_iterable_of_rows_passthrough(self):
        assert list(iter_trace_rows(iter(ROWS))) == ROWS


class TestReplayScenario:
    def test_total_request_count_matches_trace(self):
        scenario = replay_scenario(ROWS, np.random.default_rng(0))
        assert len(scenario) == sum(r.count for r in ROWS)

    def test_arrivals_fall_inside_their_minute(self):
        scenario = replay_scenario(ROWS, np.random.default_rng(0), minute_s=60.0)
        by_key = {}
        for req in scenario:
            by_key.setdefault(req.function.name.split("#")[0], []).append(req)
        for row in ROWS:
            lo, hi = row.minute * 60.0, (row.minute + 1) * 60.0
            in_minute = [
                r for r in by_key[row.key] if lo <= r.release_time < hi
            ]
            assert len(in_minute) == row.count

    def test_deterministic_under_fixed_seed(self):
        a = replay_scenario(ROWS, np.random.default_rng(9))
        b = replay_scenario(ROWS, np.random.default_rng(9))
        assert [(r.rid, r.function.name, r.release_time, r.service_time) for r in a] \
            == [(r.rid, r.function.name, r.release_time, r.service_time) for r in b]

    def test_seed_changes_arrivals(self):
        a = replay_scenario(ROWS, np.random.default_rng(1))
        b = replay_scenario(ROWS, np.random.default_rng(2))
        assert [r.release_time for r in a] != [r.release_time for r in b]

    def test_function_mapping_stable_and_namespaced(self):
        scenario = replay_scenario(ROWS, np.random.default_rng(0))
        names = {r.function.name for r in scenario}
        # app2/f1 appears in two rows → must map to ONE namespaced function.
        assert len(names) == 3
        assert all("#" in name for name in names)
        catalog_names = {spec.name for spec in sebs_catalog()}
        assert {name.split("#")[1] for name in names} <= catalog_names

    def test_namespace_disabled_collapses_to_catalog(self):
        scenario = replay_scenario(
            ROWS, np.random.default_rng(0), namespace_functions=False
        )
        catalog_names = {spec.name for spec in sebs_catalog()}
        assert {r.function.name for r in scenario} <= catalog_names

    def test_minute_s_compresses_time(self):
        scenario = replay_scenario(ROWS, np.random.default_rng(0), minute_s=1.0)
        assert scenario.window == 3.0  # minutes 0..2
        assert all(r.release_time < 3.0 for r in scenario)

    def test_max_minutes_truncates(self):
        scenario = replay_scenario(ROWS, np.random.default_rng(0), max_minutes=1)
        assert len(scenario) == 15  # only minute-0 rows
        assert scenario.window == 60.0

    def test_zero_count_rows_and_empty_trace(self):
        empty = replay_scenario([], np.random.default_rng(0))
        assert len(empty) == 0
        only_zero = replay_scenario(
            [TraceRow("a", "b", 4, 0)], np.random.default_rng(0)
        )
        assert len(only_zero) == 0
        assert only_zero.window == 300.0  # minutes 0..4 still span the window

    def test_invalid_minute_s_rejected(self):
        with pytest.raises(ValueError):
            replay_scenario(ROWS, np.random.default_rng(0), minute_s=0.0)

    def test_runs_through_platform(self):
        from repro.cluster.platform import FaaSPlatform
        from repro.node.config import NodeConfig
        from repro.node.invoker import Invoker
        from repro.sim.core import Environment

        env = Environment()
        invoker = Invoker(env, NodeConfig(cores=4), policy="SEPT")
        scenario = replay_scenario(ROWS, np.random.default_rng(3), minute_s=5.0)
        records = FaaSPlatform(env, [invoker]).run_scenario(scenario)
        assert len(records) == len(scenario)
