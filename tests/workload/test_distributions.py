"""Tests for the split log-normal service-time model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload._normal import norm_ppf
from repro.workload.distributions import SplitLogNormal, fit_split_lognormal


class TestNormPpf:
    def test_median(self):
        assert norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_quantiles(self):
        assert norm_ppf(0.95) == pytest.approx(1.6448536, abs=1e-6)
        assert norm_ppf(0.05) == pytest.approx(-1.6448536, abs=1e-6)
        assert norm_ppf(0.975) == pytest.approx(1.959964, abs=1e-5)

    def test_symmetry(self):
        for p in (0.01, 0.1, 0.3, 0.45):
            assert norm_ppf(p) == pytest.approx(-norm_ppf(1 - p), abs=1e-7)

    def test_domain_errors(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                norm_ppf(bad)

    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    @settings(deadline=None)  # first example pays the scipy import
    def test_agrees_with_scipy(self, p):
        scipy_stats = pytest.importorskip("scipy.stats")
        assert norm_ppf(p) == pytest.approx(float(scipy_stats.norm.ppf(p)), abs=1e-6)


class TestFit:
    def test_fit_reproduces_percentiles_exactly(self):
        dist = fit_split_lognormal(0.184, 0.192, 0.405)  # uploader, seconds
        assert dist.percentile(5) == pytest.approx(0.184, rel=1e-9)
        assert dist.percentile(50) == pytest.approx(0.192, rel=1e-9)
        assert dist.percentile(95) == pytest.approx(0.405, rel=1e-9)

    def test_symmetric_case_gives_equal_sigmas(self):
        dist = fit_split_lognormal(1.0, 2.0, 4.0)
        assert dist.sigma_low == pytest.approx(dist.sigma_high)

    def test_degenerate_spread_allowed(self):
        dist = fit_split_lognormal(1.0, 1.0, 1.0)
        assert dist.sigma_low == 0.0 and dist.sigma_high == 0.0
        rng = np.random.default_rng(0)
        assert np.all(dist.sample(rng, size=100) == 1.0)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            fit_split_lognormal(2.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            fit_split_lognormal(0.0, 1.0, 2.0)

    @given(
        p50=st.floats(min_value=1e-3, max_value=1e3),
        lo_ratio=st.floats(min_value=0.1, max_value=1.0),
        hi_ratio=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=50)
    def test_fit_roundtrip_property(self, p50, lo_ratio, hi_ratio):
        p5, p95 = p50 * lo_ratio, p50 * hi_ratio
        dist = fit_split_lognormal(p5, p50, p95)
        assert dist.percentile(5) == pytest.approx(p5, rel=1e-6)
        assert dist.percentile(50) == pytest.approx(p50, rel=1e-6)
        assert dist.percentile(95) == pytest.approx(p95, rel=1e-6)


class TestSampling:
    def test_samples_positive(self):
        dist = fit_split_lognormal(0.1, 0.2, 0.9)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, size=10_000)
        assert np.all(samples > 0)

    def test_empirical_percentiles_converge(self):
        dist = fit_split_lognormal(0.5, 1.0, 3.0)
        rng = np.random.default_rng(2)
        samples = dist.sample(rng, size=200_000)
        assert np.percentile(samples, 50) == pytest.approx(1.0, rel=0.02)
        assert np.percentile(samples, 5) == pytest.approx(0.5, rel=0.05)
        assert np.percentile(samples, 95) == pytest.approx(3.0, rel=0.05)

    def test_scalar_sample(self):
        dist = fit_split_lognormal(1.0, 2.0, 4.0)
        value = dist.sample(np.random.default_rng(3))
        assert np.isscalar(value) or value.shape == ()

    def test_mean_matches_empirical(self):
        dist = fit_split_lognormal(0.5, 1.0, 3.0)
        rng = np.random.default_rng(4)
        samples = dist.sample(rng, size=300_000)
        assert dist.mean == pytest.approx(float(np.mean(samples)), rel=0.02)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SplitLogNormal(median=-1.0, sigma_low=0.1, sigma_high=0.1)
        with pytest.raises(ValueError):
            SplitLogNormal(median=1.0, sigma_low=-0.1, sigma_high=0.1)

    def test_percentile_domain(self):
        dist = fit_split_lognormal(1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            dist.percentile(0)
        with pytest.raises(ValueError):
            dist.percentile(100)
