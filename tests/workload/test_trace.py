"""Tests for the synthetic trace generator extension."""

import numpy as np
import pytest

from repro.workload.trace import TraceProfile, trace_scenario


class TestTraceProfile:
    def test_rate_at(self):
        profile = TraceProfile(
            duration_s=100, base_rate=1.0, peak_rate=10.0,
            peak_start_s=40, peak_duration_s=20,
        )
        assert profile.rate_at(10) == 1.0
        assert profile.rate_at(50) == 10.0
        assert profile.rate_at(60) == 1.0  # peak end exclusive

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceProfile(duration_s=0)
        with pytest.raises(ValueError):
            TraceProfile(base_rate=-1)
        with pytest.raises(ValueError):
            TraceProfile(peak_start_s=1000, duration_s=100)
        with pytest.raises(ValueError):
            TraceProfile(zipf_exponent=-0.1)


class TestTraceScenario:
    def _profile(self):
        return TraceProfile(
            duration_s=200, base_rate=2.0, peak_rate=20.0,
            peak_start_s=80, peak_duration_s=40,
        )

    def test_arrival_count_near_expectation(self):
        profile = self._profile()
        scenario = trace_scenario(profile, np.random.default_rng(0))
        expected = 2.0 * 160 + 20.0 * 40  # 1120
        assert expected * 0.85 < len(scenario) < expected * 1.15

    def test_peak_denser_than_baseline(self):
        profile = self._profile()
        scenario = trace_scenario(profile, np.random.default_rng(1))
        peak = sum(1 for r in scenario if 80 <= r.release_time < 120)
        before = sum(1 for r in scenario if 0 <= r.release_time < 40)
        assert peak > 4 * before

    def test_zipf_popularity_short_functions_dominate(self):
        scenario = trace_scenario(self._profile(), np.random.default_rng(2))
        assert scenario.count_for("graph-bfs") > scenario.count_for("dna-visualisation")

    def test_uniform_when_exponent_zero(self):
        profile = TraceProfile(duration_s=600, base_rate=5.0, peak_rate=5.0,
                               zipf_exponent=0.0)
        scenario = trace_scenario(profile, np.random.default_rng(3))
        counts = [scenario.count_for(f.name) for f in scenario.functions]
        assert max(counts) < 2.0 * min(counts)

    def test_zero_rate_empty(self):
        profile = TraceProfile(base_rate=0.0, peak_rate=0.0)
        scenario = trace_scenario(profile, np.random.default_rng(0))
        assert len(scenario) == 0

    def test_deterministic(self):
        a = trace_scenario(self._profile(), np.random.default_rng(7))
        b = trace_scenario(self._profile(), np.random.default_rng(7))
        assert [r.release_time for r in a] == [r.release_time for r in b]

    def test_runs_through_platform(self):
        from repro.cluster.platform import FaaSPlatform
        from repro.node.config import NodeConfig
        from repro.node.invoker import Invoker
        from repro.sim.core import Environment
        from repro.workload.functions import sebs_catalog

        env = Environment()
        invoker = Invoker(env, NodeConfig(cores=4), policy="FC")
        invoker.warm_up(sebs_catalog())
        profile = TraceProfile(duration_s=60, base_rate=1.0, peak_rate=6.0,
                               peak_start_s=20, peak_duration_s=20)
        scenario = trace_scenario(profile, np.random.default_rng(4))
        records = FaaSPlatform(env, [invoker]).run_scenario(scenario)
        assert len(records) == len(scenario)
