"""Tests for the scenario registry."""

import numpy as np
import pytest

from repro.workload.functions import sebs_catalog
from repro.workload.registry import (
    REQUIRED,
    SCENARIOS,
    ScenarioParam,
    ScenarioRegistry,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workload.scenarios import uniform_burst

EXPECTED_BUILTINS = {
    "uniform", "skewed", "multi-node", "azure",
    "poisson", "diurnal", "zipf-multitenant", "trace", "replay",
}


class TestBuiltinCatalog:
    def test_at_least_eight_scenarios_registered(self):
        assert len(scenario_names()) >= 8

    def test_expected_builtins_present(self):
        assert EXPECTED_BUILTINS <= set(scenario_names())

    def test_every_spec_has_description_and_section(self):
        for name in scenario_names():
            spec = get_scenario(name)
            assert spec.description
            assert spec.paper_section
            for param in spec.params:
                assert param.doc  # units/meaning documented

    def test_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()

        @registry.register("dup", description="first")
        def first(cores, intensity, rng, *, window, catalog):
            raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            @registry.register("dup", description="second")
            def second(cores, intensity, rng, *, window, catalog):
                raise NotImplementedError

    def test_duplicate_builtin_rejected_in_default_registry(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_scenario("uniform", description="clash")
            def clash(cores, intensity, rng, *, window, catalog):
                raise NotImplementedError

    def test_unknown_name_error_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("chaos-monkey")
        message = str(excinfo.value)
        assert "chaos-monkey" in message
        for name in ("uniform", "poisson", "replay"):
            assert name in message

    def test_contains_and_len(self):
        registry = ScenarioRegistry()
        assert "x" not in registry and len(registry) == 0

        @registry.register("x", description="d")
        def x(cores, intensity, rng, *, window, catalog):
            raise NotImplementedError

        assert "x" in registry and len(registry) == 1
        assert [spec.name for spec in registry] == ["x"]


class TestParamValidation:
    def test_unknown_param_rejected_listing_valid(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("skewed").validate_params({"rare_functio": "sleep"})
        message = str(excinfo.value)
        assert "rare_functio" in message and "rare_function" in message

    def test_param_on_paramless_scenario_rejected(self):
        with pytest.raises(ValueError, match="(none)"):
            get_scenario("uniform").validate_params({"rate": 3})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ValueError, match="path"):
            get_scenario("replay").validate_params({})

    def test_defaults_merged_under_overrides(self):
        merged = get_scenario("skewed").validate_params({"rare_count": 5})
        assert merged == {"rare_function": "dna-visualisation", "rare_count": 5}

    def test_required_sentinel(self):
        assert ScenarioParam("p", REQUIRED).required
        assert not ScenarioParam("p", None).required


class TestBuild:
    def test_registry_matches_direct_builder_bit_for_bit(self):
        direct = uniform_burst(4, 10, np.random.default_rng(3))
        via_registry = build_scenario("uniform", 4, 10, np.random.default_rng(3))
        assert [(r.rid, r.function.name, r.release_time, r.service_time) for r in direct] \
            == [(r.rid, r.function.name, r.release_time, r.service_time) for r in via_registry]

    def test_build_respects_window_and_catalog(self):
        catalog = sebs_catalog()[:3]
        scenario = build_scenario(
            "uniform", 10, 30, np.random.default_rng(0), window=5.0, catalog=catalog
        )
        assert len(scenario.functions) == 3
        assert all(r.release_time < 5.0 for r in scenario)

    def test_all_builtins_build_nonempty(self, tmp_path):
        from repro.workload.replay import TraceRow, write_trace_csv

        csv_path = write_trace_csv(
            tmp_path / "t.csv", [TraceRow("a", "f", 0, 20)]
        )
        for name in scenario_names():
            params = {"path": str(csv_path)} if name == "replay" else None
            scenario = build_scenario(
                name, 4, 10, np.random.default_rng(1), params=params
            )
            assert len(scenario) > 0, name
