"""Tests for named scenario builders."""

import numpy as np
import pytest

from repro.workload.functions import sebs_catalog
from repro.workload.scenarios import (
    azure_like_burst,
    multi_node_burst,
    skewed_burst,
    uniform_burst,
)


class TestUniformBurst:
    def test_total_count_matches_paper(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(20, 30, rng)
        assert len(scenario) == 660  # paper's example

    def test_equal_per_function_counts(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(10, 30, rng)
        for spec in sebs_catalog():
            assert scenario.count_for(spec.name) == 30

    def test_custom_window(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(5, 30, rng, window=10.0)
        assert all(r.release_time < 10.0 for r in scenario)


class TestSkewedBurst:
    def test_rare_function_exact_count(self):
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        assert scenario.count_for("dna-visualisation") == 10

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        assert len(scenario) == 990  # 1.1 * 10 * 90

    def test_short_function_share_near_uniform(self):
        # Paper Fig. 5: graph-bfs is ~9.9% of all calls.
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        share = scenario.count_for("graph-bfs") / len(scenario)
        assert 0.05 < share < 0.15

    def test_unknown_rare_function_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_burst(10, 90, rng, rare_function="nope")

    def test_rare_count_exceeding_total_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_burst(1, 1, rng, rare_count=100)


class TestMultiNodeBurst:
    @pytest.mark.parametrize("total", [1320, 2376])
    def test_paper_request_counts(self, total):
        rng = np.random.default_rng(0)
        scenario = multi_node_burst(total, rng)
        assert len(scenario) == total
        per_function = total // 11
        for spec in sebs_catalog():
            assert scenario.count_for(spec.name) == per_function

    def test_indivisible_total_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            multi_node_burst(1000, rng)  # not divisible by 11


class TestAzureLikeBurst:
    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        scenario = azure_like_burst(10, 30, rng)
        assert len(scenario) == 330

    def test_short_functions_dominate(self):
        rng = np.random.default_rng(0)
        scenario = azure_like_burst(10, 60, rng)
        shortest = min(sebs_catalog(), key=lambda s: s.p50)
        longest = max(sebs_catalog(), key=lambda s: s.p50)
        assert scenario.count_for(shortest.name) > scenario.count_for(longest.name)
