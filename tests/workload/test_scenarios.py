"""Tests for named scenario builders."""

import numpy as np
import pytest

from repro.workload.functions import sebs_catalog
from repro.workload.generator import requests_for_intensity
from repro.workload.scenarios import (
    azure_like_burst,
    diurnal_burst,
    multi_node_burst,
    poisson_burst,
    skewed_burst,
    uniform_burst,
    zipf_multitenant_burst,
)


class TestUniformBurst:
    def test_total_count_matches_paper(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(20, 30, rng)
        assert len(scenario) == 660  # paper's example

    def test_equal_per_function_counts(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(10, 30, rng)
        for spec in sebs_catalog():
            assert scenario.count_for(spec.name) == 30

    def test_custom_window(self):
        rng = np.random.default_rng(0)
        scenario = uniform_burst(5, 30, rng, window=10.0)
        assert all(r.release_time < 10.0 for r in scenario)

    def test_non_integral_count_raises_actionable_error(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError) as excinfo:
            uniform_burst(3, 5, rng)
        message = str(excinfo.value)
        # Names the offending pair, the bad value, and a valid alternative.
        assert "3" in message and "5" in message
        assert "1.5" in message
        assert "multiple of 10" in message
        assert "intensity=10" in message

    def test_integral_count_still_accepted_off_paper_grid(self):
        # 0.1 * 4 * 5 = 2 is integral even though 5 is not a paper intensity.
        scenario = uniform_burst(4, 5, np.random.default_rng(0))
        assert len(scenario) == 22


class TestSkewedBurst:
    def test_rare_function_exact_count(self):
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        assert scenario.count_for("dna-visualisation") == 10

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        assert len(scenario) == 990  # 1.1 * 10 * 90

    def test_short_function_share_near_uniform(self):
        # Paper Fig. 5: graph-bfs is ~9.9% of all calls.
        rng = np.random.default_rng(0)
        scenario = skewed_burst(10, 90, rng)
        share = scenario.count_for("graph-bfs") / len(scenario)
        assert 0.05 < share < 0.15

    def test_unknown_rare_function_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_burst(10, 90, rng, rare_function="nope")

    def test_rare_count_exceeding_total_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_burst(1, 1, rng, rare_count=100)


class TestMultiNodeBurst:
    @pytest.mark.parametrize("total", [1320, 2376])
    def test_paper_request_counts(self, total):
        rng = np.random.default_rng(0)
        scenario = multi_node_burst(total, rng)
        assert len(scenario) == total
        per_function = total // 11
        for spec in sebs_catalog():
            assert scenario.count_for(spec.name) == per_function

    def test_indivisible_total_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            multi_node_burst(1000, rng)  # not divisible by 11


class TestAzureLikeBurst:
    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        scenario = azure_like_burst(10, 30, rng)
        assert len(scenario) == 330

    def test_short_functions_dominate(self):
        rng = np.random.default_rng(0)
        scenario = azure_like_burst(10, 60, rng)
        shortest = min(sebs_catalog(), key=lambda s: s.p50)
        longest = max(sebs_catalog(), key=lambda s: s.p50)
        assert scenario.count_for(shortest.name) > scenario.count_for(longest.name)


class TestPoissonBurst:
    def test_count_near_paper_expectation(self):
        expected = requests_for_intensity(10, 60)  # 660
        scenario = poisson_burst(10, 60, np.random.default_rng(0))
        assert expected * 0.85 < len(scenario) < expected * 1.15

    def test_deterministic(self):
        a = poisson_burst(4, 10, np.random.default_rng(5))
        b = poisson_burst(4, 10, np.random.default_rng(5))
        assert [r.release_time for r in a] == [r.release_time for r in b]

    def test_explicit_rate(self):
        scenario = poisson_burst(4, 10, np.random.default_rng(0), rate=10.0)
        assert 60.0 * 10 * 0.7 < len(scenario) < 60.0 * 10 * 1.3

    def test_zero_rate_empty(self):
        assert len(poisson_burst(4, 10, np.random.default_rng(0), rate=0.0)) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_burst(4, 10, np.random.default_rng(0), rate=-1.0)

    def test_zipf_mix_skews_short(self):
        scenario = poisson_burst(
            10, 60, np.random.default_rng(1), zipf_exponent=1.5
        )
        shortest = min(sebs_catalog(), key=lambda s: s.p50)
        longest = max(sebs_catalog(), key=lambda s: s.p50)
        assert scenario.count_for(shortest.name) > scenario.count_for(longest.name)


class TestDiurnalBurst:
    def test_count_near_mean_rate(self):
        # The sinusoid integrates to the mean over a whole period, so the
        # expected total matches the uniform scenario's.
        expected = requests_for_intensity(10, 60)
        scenario = diurnal_burst(10, 60, np.random.default_rng(0))
        assert expected * 0.8 < len(scenario) < expected * 1.2

    def test_peak_half_denser_than_trough_half(self):
        # phase=0: rate rises above mean on [0, T/2), falls below on [T/2, T).
        scenario = diurnal_burst(
            10, 120, np.random.default_rng(1), amplitude=1.0
        )
        first = sum(1 for r in scenario if r.release_time < 30.0)
        second = len(scenario) - first
        assert first > 1.5 * second

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            diurnal_burst(4, 10, np.random.default_rng(0), amplitude=1.5)

    def test_period_validated(self):
        with pytest.raises(ValueError):
            diurnal_burst(4, 10, np.random.default_rng(0), period_s=0.0)

    def test_deterministic(self):
        a = diurnal_burst(4, 10, np.random.default_rng(2))
        b = diurnal_burst(4, 10, np.random.default_rng(2))
        assert [r.release_time for r in a] == [r.release_time for r in b]


class TestZipfMultitenantBurst:
    def test_total_matches_paper_arithmetic(self):
        scenario = zipf_multitenant_burst(10, 30, np.random.default_rng(0))
        assert len(scenario) == requests_for_intensity(10, 30)

    def test_function_names_namespaced_per_tenant(self):
        scenario = zipf_multitenant_burst(
            10, 60, np.random.default_rng(0), tenants=3
        )
        names = {r.function.name for r in scenario}
        assert all(name.startswith("tenant") and "/" in name for name in names)
        tenants_seen = {name.split("/")[0] for name in names}
        assert tenants_seen <= {"tenant0", "tenant1", "tenant2"}
        assert len(names) <= 3 * len(sebs_catalog())

    def test_first_tenant_most_popular(self):
        scenario = zipf_multitenant_burst(
            10, 120, np.random.default_rng(1), tenants=4, tenant_exponent=1.5
        )
        per_tenant = {}
        for r in scenario:
            tenant = r.function.name.split("/")[0]
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        assert per_tenant["tenant0"] == max(per_tenant.values())
        assert per_tenant["tenant0"] > per_tenant.get("tenant3", 0)

    def test_single_tenant_collapses_to_skewed_mix(self):
        scenario = zipf_multitenant_burst(
            4, 10, np.random.default_rng(0), tenants=1
        )
        assert {r.function.name.split("/")[0] for r in scenario} == {"tenant0"}

    def test_tenants_validated(self):
        with pytest.raises(ValueError):
            zipf_multitenant_burst(4, 10, np.random.default_rng(0), tenants=0)

    def test_shared_spec_instances_per_tenant_function(self):
        scenario = zipf_multitenant_burst(4, 30, np.random.default_rng(0))
        by_name = {}
        for r in scenario:
            by_name.setdefault(r.function.name, set()).add(id(r.function))
        assert all(len(ids) == 1 for ids in by_name.values())
