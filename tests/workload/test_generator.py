"""Tests for burst scenario generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.functions import sebs_catalog
from repro.workload.generator import (
    BURST_WINDOW_S,
    BurstScenario,
    Request,
    requests_for_intensity,
)


class TestIntensityArithmetic:
    @pytest.mark.parametrize(
        "cores,intensity,expected",
        [(20, 30, 660), (10, 30, 330), (5, 120, 660), (10, 120, 1320), (20, 120, 2640)],
    )
    def test_paper_counts(self, cores, intensity, expected):
        # Paper Sect. V-B: 1.1 * c * v requests (e.g. 20 cores, intensity
        # 30 -> 660 requests).
        assert requests_for_intensity(cores, intensity) == expected

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            requests_for_intensity(0, 30)
        with pytest.raises(ValueError):
            requests_for_intensity(10, 0)

    @given(cores=st.integers(1, 64), intensity=st.integers(1, 200))
    @settings(max_examples=100)
    def test_count_positive_and_close_to_formula(self, cores, intensity):
        n = requests_for_intensity(cores, intensity)
        assert n >= 1
        assert abs(n - 1.1 * cores * intensity) < 1.0


class TestRequest:
    def test_cpu_io_split(self):
        spec = sebs_catalog()[0]  # dna-visualisation, cpu_fraction 0.95
        req = Request(0, spec, 1.0, 2.0)
        assert req.cpu_work == pytest.approx(2.0 * 0.95)
        assert req.io_time == pytest.approx(2.0 * 0.05)
        assert req.cpu_work + req.io_time == pytest.approx(req.service_time)


class TestBurstScenario:
    def _scenario(self, seed=0, count=30):
        rng = np.random.default_rng(seed)
        counts = [(spec, count) for spec in sebs_catalog()]
        return BurstScenario.from_counts(counts, rng)

    def test_total_count(self):
        scenario = self._scenario(count=30)
        assert len(scenario) == 30 * 11

    def test_sorted_by_release_time(self):
        scenario = self._scenario()
        releases = [r.release_time for r in scenario]
        assert releases == sorted(releases)

    def test_arrivals_within_window(self):
        scenario = self._scenario()
        assert all(0.0 <= r.release_time < BURST_WINDOW_S for r in scenario)

    def test_unique_request_ids(self):
        scenario = self._scenario()
        rids = [r.rid for r in scenario]
        assert len(set(rids)) == len(rids)

    def test_count_for(self):
        scenario = self._scenario(count=7)
        for spec in sebs_catalog():
            assert scenario.count_for(spec.name) == 7

    def test_functions_accessor(self):
        scenario = self._scenario()
        assert {f.name for f in scenario.functions} == {
            s.name for s in sebs_catalog()
        }

    def test_zero_count_function_skipped(self):
        rng = np.random.default_rng(1)
        specs = sebs_catalog()
        scenario = BurstScenario.from_counts([(specs[0], 0), (specs[1], 5)], rng)
        assert len(scenario) == 5
        assert scenario.count_for(specs[0].name) == 0

    def test_negative_count_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            BurstScenario.from_counts([(sebs_catalog()[0], -1)], rng)

    def test_deterministic_for_seed(self):
        a = self._scenario(seed=5)
        b = self._scenario(seed=5)
        assert [(r.release_time, r.service_time) for r in a] == [
            (r.release_time, r.service_time) for r in b
        ]

    def test_different_seeds_differ(self):
        a = self._scenario(seed=5)
        b = self._scenario(seed=6)
        assert [r.release_time for r in a] != [r.release_time for r in b]

    def test_service_times_positive(self):
        scenario = self._scenario()
        assert all(r.service_time > 0 for r in scenario)

    def test_totals(self):
        scenario = self._scenario(count=5)
        assert scenario.total_cpu_work() <= scenario.total_service_time()
        assert scenario.total_cpu_work() > 0
